"""Ablation A2 — generator and pump efficiency.

The internal rails are fed through regulators and a Vpp pump; the paper
models them with efficiency factors.  This ablation quantifies how much
of the external power is conversion loss by comparing the calibrated
device against a hypothetical one with ideal (loss-free) generators.
"""

from repro import DramPowerModel
from repro.core.idd import idd7_mixed

from conftest import emit


def evaluate(device):
    base = idd7_mixed(DramPowerModel(device)).power
    ideal = device.evolve(voltages=device.voltages.with_levels(
        eff_vint=1.0, eff_vbl=1.0, eff_vpp=1.0,
    ))
    ideal_power = idd7_mixed(DramPowerModel(ideal)).power
    return base, ideal_power


def test_ablation_generator_efficiency(benchmark, ddr3_device):
    base, ideal = benchmark(evaluate, ddr3_device)
    loss = 1.0 - ideal / base
    emit("Ablation - generator/pump efficiency on "
         f"{ddr3_device.name}:\n"
         f"  calibrated generators : {base * 1e3:.1f} mW\n"
         f"  ideal generators      : {ideal * 1e3:.1f} mW\n"
         f"  conversion loss       : {loss:.1%} of total power")

    # Conversion loss is a real, visible chunk of DRAM power: the Vbl
    # regulator drops Vdd→Vbl and the pump roughly doubles the wordline
    # charge — but it cannot plausibly exceed half the total.
    assert 0.05 < loss < 0.50

    # The pump is the single least efficient generator.
    volts = ddr3_device.voltages
    assert volts.eff_vpp < volts.eff_vbl
    assert volts.eff_vpp < volts.eff_vint
