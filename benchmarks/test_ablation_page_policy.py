"""Ablation A7 — open- vs closed-page controller policy.

The §V schemes narrow what an activation costs; the controller policy
decides how often one happens.  This ablation runs the same access
streams under both policies across row-hit rates: open-page wins whenever
locality exists, and the gap closes as the stream randomises — the
workload-side framing of "spatial locality is important in all power
reduction proposals" (§VI).
"""

from repro import DramPowerModel
from repro.analysis import format_table
from repro.core.trace import evaluate_trace
from repro.workloads import OpenPageScheduler, Request

from conftest import emit

ACCESSES = 800


def _requests(device, hit_rate, seed=9):
    import random
    rng = random.Random(seed)
    banks = device.spec.banks
    rows = device.spec.rows_per_bank
    last = {bank: 0 for bank in range(banks)}
    stream = []
    for _ in range(ACCESSES):
        bank = rng.randrange(banks)
        if rng.random() < hit_rate:
            row = last[bank]
        else:
            row = rng.randrange(rows)
            last[bank] = row
        stream.append(Request(bank=bank, row=row))
    return stream


def sweep(device):
    model = DramPowerModel(device)
    rows = []
    for hit_rate in (0.9, 0.5, 0.1):
        energies = {}
        for policy in ("open", "closed"):
            scheduler = OpenPageScheduler(device, policy=policy)
            scheduler.extend(_requests(device, hit_rate))
            result = evaluate_trace(model, scheduler.finalize(),
                                    strict=True)
            energies[policy] = result.energy_per_bit
        rows.append((hit_rate, energies["open"], energies["closed"]))
    return rows


def test_ablation_page_policy(benchmark, ddr3_device):
    rows = benchmark(sweep, ddr3_device)

    emit(format_table(
        ["target hit rate", "open pJ/bit", "closed pJ/bit",
         "open advantage"],
        [[f"{hit:.0%}", round(open_e * 1e12, 1),
          round(closed_e * 1e12, 1),
          f"{1 - open_e / closed_e:+.1%}"]
         for hit, open_e, closed_e in rows],
        title="Ablation - controller page policy on "
              f"{ddr3_device.name} ({ACCESSES} accesses)",
    ))

    # Open-page never loses, and wins big under locality.
    for hit, open_e, closed_e in rows:
        assert open_e <= closed_e * 1.02, hit
    high_hit = rows[0]
    low_hit = rows[-1]
    assert 1 - high_hit[1] / high_hit[2] > 0.2   # >20 % at 90 % hits
    assert 1 - low_hit[1] / low_hit[2] < 0.15    # gap closes when random
