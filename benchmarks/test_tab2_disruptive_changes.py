"""Experiment E8 — Table II: disruptive DRAM technology changes.

Regenerates the table and asserts that every encoded transition is
actually reflected in the model: the cell-architecture staircase, the
cells-per-line step, and the discrete multiplier steps in the scaling
laws.
"""

from repro.analysis import format_table
from repro.devices import build_device
from repro.technology import (
    DISRUPTIVE_CHANGES,
    cell_architecture_for_node,
    cells_per_line_for_node,
    changes_between,
    shrink_factor,
)

from conftest import emit


def test_tab2_disruptive_changes(benchmark):
    crossed = benchmark(changes_between, 250, 16)

    emit(format_table(
        ["transition", "disruptive change", "model effect"],
        [[f"{change.from_node_nm:g}->{change.to_node_nm:g}nm",
          change.change[:46], change.model_effect[:52]]
         for change in DISRUPTIVE_CHANGES],
        title="Table II - disruptive DRAM technology changes",
    ))

    # Every Table II row is crossed over the full span.
    assert len(crossed) == len(DISRUPTIVE_CHANGES) == 9

    # 110→90: cells per bitline/local wordline step.
    assert cells_per_line_for_node(110) == 256
    assert cells_per_line_for_node(90) == 512

    # 110→90: dual gate oxide — a visible discontinuity in tox_logic.
    assert shrink_factor("tox_logic", 110, 90) > (110 / 90) ** 0.5 * 1.2

    # 75→65: folded 8F² to open 6F².
    assert cell_architecture_for_node(75)[0] == "folded"
    assert cell_architecture_for_node(65)[0] == "open"
    device_75 = build_device(75)
    device_65 = build_device(65)
    assert device_75.floorplan.array.is_folded
    assert not device_65.floorplan.array.is_folded

    # 55→44: Cu metallization lowers specific wire capacitance.
    assert shrink_factor("c_wire_signal", 44, 55) < (44 / 55) ** 0.2 * 0.9

    # 40→36: 4F² — wordline pitch drops from 3F to 2F.
    assert cell_architecture_for_node(44)[1] == 3.0
    assert cell_architecture_for_node(36)[1] == 2.0

    # 36→31: high-k gate oxide step.
    assert shrink_factor("tox_logic", 31, 36) < (31 / 36) ** 0.5 * 0.95
