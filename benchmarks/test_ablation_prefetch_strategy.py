"""Ablation A3 — prefetch vs core frequency for the DDR5 forecast.

The paper assumes the per-pin data rate keeps doubling while "the maximum
core frequency does not increase, so that the higher interface pin
datarate is increased by increasing the prefetch" — the low-cost core
choice.  This ablation builds the 18 nm DDR5 both ways: prefetch 32 at a
200 MHz core (paper) vs prefetch 16 at a 400 MHz core, and quantifies the
energy difference.
"""

from repro import DramPowerModel
from repro.core.idd import idd4r
from repro.devices import build_device

from conftest import emit


def build_pair():
    wide = build_device(18, name="ddr5-prefetch32")
    # Same bandwidth with half the prefetch: the core runs twice as fast,
    # each access moves half as many bits.
    fast_core = build_device(18, name="ddr5-prefetch16")
    fast_core = fast_core.replace_path("spec.prefetch", 16)
    fast_core = fast_core.replace_path("spec.burst_length", 16)
    return wide, fast_core


def test_ablation_prefetch_strategy(benchmark):
    wide, fast_core = benchmark(build_pair)
    wide_model = DramPowerModel(wide)
    fast_model = DramPowerModel(fast_core)

    assert wide.spec.core_access_rate == fast_core.spec.core_access_rate / 2
    assert wide.spec.bits_per_access == 2 * fast_core.spec.bits_per_access

    wide_idd4 = idd4r(wide_model)
    fast_idd4 = idd4r(fast_model)
    emit("Ablation - DDR5 prefetch strategy at 6.4 Gb/s/pin:\n"
         f"  prefetch 32, 200 MHz core: IDD4R "
         f"{wide_idd4.milliamps:.1f} mA, "
         f"{wide_idd4.power.energy_per_bit_pj:.2f} pJ/bit\n"
         f"  prefetch 16, 400 MHz core: IDD4R "
         f"{fast_idd4.milliamps:.1f} mA, "
         f"{fast_idd4.power.energy_per_bit_pj:.2f} pJ/bit")

    # Both strategies deliver the full bandwidth.
    assert wide_idd4.power.data_bits_per_second == \
        fast_idd4.power.data_bits_per_second

    # The per-bit energies stay in the same ballpark — the choice is a
    # cost (core design) decision, not a large power one.  The wide
    # prefetch moves more wires per access; the fast core clocks its
    # logic twice as often.
    ratio = (wide_idd4.power.energy_per_bit
             / fast_idd4.power.energy_per_bit)
    assert 0.6 < ratio < 1.6
