"""Experiment E13 — §IV.B / §VI: the shift of power away from the array.

"Comparing the different DRAM generations shows a shift from direct array
related power consumption to signal wiring and logic circuitry power
consumption" and "the share of power usage is shifting away from the DRAM
specific cell array circuitry to general logic outside of the cell
array."
"""

from repro.analysis import format_table, generation_trend, power_shift

from conftest import emit


def test_sec4b_power_shift(benchmark):
    points = benchmark(generation_trend)
    rows = power_shift(points)

    emit(format_table(
        ["node nm", "row ops", "column ops", "background",
         "array circuits"],
        [[row["node_nm"], f"{row['row_share']:.0%}",
          f"{row['column_share']:.0%}",
          f"{row['background_share']:.0%}",
          f"{row['array_component_share']:.0%}"] for row in rows],
        title="Section IV.B - power shares across generations "
              "(Idd7-style pattern)",
    ))

    first, last = rows[0], rows[-1]

    # Row-operation share falls; column-operation share rises.
    assert last["row_share"] < first["row_share"]
    assert last["column_share"] > first["column_share"]

    # Array-circuit share (bitlines, sense amps, wordlines) falls by a
    # large factor from SDR to the DDR5 forecast.
    assert last["array_component_share"] \
        < 0.6 * first["array_component_share"]

    # On the SDR part the array still dominates the active power.
    assert first["array_component_share"] > 0.3
