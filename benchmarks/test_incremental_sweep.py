"""Experiment E-INC — incremental stage evaluation: cold vs staged sweeps.

A 64-point single-parameter sensitivity sweep is evaluated twice: cold
(every variant runs the full five-stage construction pipeline) and
incrementally (variants are assembled through a shared
:class:`~repro.engine.StageCache`, reusing every stage whose input
fingerprint is unchanged).  Results must match bit-for-bit — the stage
cache stores the exact artifacts a cold build would produce.

The speedup depends on which stages the swept parameter dirties, so
three families are measured and recorded honestly:

* ``timing.trc``     — feeds no construction stage: all 5 stages reuse,
  and the ≥3x acceptance floor is asserted here;
* ``voltages.vdd``   — dirties charge resolution onward: 2 stages reuse;
* ``technology.c_bitline`` — dirties capacitance onward: only geometry
  reuses, so the speedup is ~1x (recorded, not asserted — no silent
  caps on what the cache can and cannot accelerate).

Numbers land in ``benchmarks/BENCH_incremental.json``.
"""

import time

from repro.core import DramPowerModel
from repro.core.idd import idd0
from repro.engine import StageCache, build_model

from conftest import emit, record_metrics

POINTS = 64

#: (family label, swept description path, stages a variant can reuse).
FAMILIES = [
    ("timing", "timing.trc", 5),
    ("voltage", "voltages.vdd", 2),
    ("technology", "technology.c_bitline", 1),
]


def _variants(device, path):
    # Steps start at 1 so no variant collapses onto the base device
    # (a factor of exactly 1.0 would get a full five-stage hit).
    return [device.scale_path(path, 1.0 + 0.004 * step)
            for step in range(1, POINTS + 1)]


def _evaluate(model):
    """IDD0 reads ``timing.trc``, so every family perturbs the result."""
    result = idd0(model)
    return (result.current, result.power.power)


def _sweep_cold(devices):
    return [_evaluate(DramPowerModel(device)) for device in devices]


def _sweep_incremental(base, devices, stages):
    build_model(base, stages)
    return [_evaluate(build_model(device, stages)) for device in devices]


def _measure_family(base, path):
    devices = _variants(base, path)

    started = time.perf_counter()
    cold = _sweep_cold(devices)
    cold_seconds = time.perf_counter() - started

    stages = StageCache()
    started = time.perf_counter()
    incremental = _sweep_incremental(base, devices, stages)
    incremental_seconds = time.perf_counter() - started

    # Bit-for-bit: assembled-from-cache models equal cold builds.
    assert incremental == cold
    # The parameter actually perturbs the evaluated quantity.
    assert len(set(cold)) > 1

    hits, misses = stages.counters()
    return {
        "cold_seconds": cold_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": cold_seconds / incremental_seconds,
        "stage_hits": hits,
        "stage_misses": misses,
        "hits_per_variant": hits / POINTS,
    }


def test_incremental_timing_sweep(benchmark, ddr3_device):
    """Full-reuse family: the ≥3x acceptance criterion lives here."""
    measured = _measure_family(ddr3_device, "timing.trc")

    emit(f"incremental sweep (timing.trc, {POINTS} points): "
         f"cold {measured['cold_seconds'] * 1e3:.1f} ms, "
         f"incremental {measured['incremental_seconds'] * 1e3:.1f} ms, "
         f"speedup {measured['speedup']:.1f}x, "
         f"{measured['hits_per_variant']:.1f} stage hits/variant")

    # Timing feeds no construction stage: every variant reuses all 5.
    assert measured["hits_per_variant"] == 5.0
    assert measured["stage_misses"] == 5  # the base build only
    assert measured["speedup"] >= 3.0

    record_metrics("BENCH_incremental.json", {
        "incremental.points": POINTS,
        "incremental.timing.cold_ms":
            round(measured["cold_seconds"] * 1e3, 2),
        "incremental.timing.incremental_ms":
            round(measured["incremental_seconds"] * 1e3, 2),
        "incremental.timing.speedup": round(measured["speedup"], 2),
        "incremental.timing.hits_per_variant":
            measured["hits_per_variant"],
    })

    # pytest-benchmark records the steady-state staged-assembly cost.
    stages = StageCache()
    devices = _variants(ddr3_device, "timing.trc")
    benchmark(_sweep_incremental, ddr3_device, devices, stages)


def test_incremental_partial_reuse_families(ddr3_device):
    """Partial-reuse families: parity asserted, speedup recorded as-is."""
    for label, path, reusable in FAMILIES[1:]:
        measured = _measure_family(ddr3_device, path)

        emit(f"incremental sweep ({path}): "
             f"speedup {measured['speedup']:.2f}x, "
             f"{measured['hits_per_variant']:.1f} stage hits/variant")

        assert measured["hits_per_variant"] == float(reusable)
        record_metrics("BENCH_incremental.json", {
            f"incremental.{label}.speedup":
                round(measured["speedup"], 2),
            f"incremental.{label}.hits_per_variant":
                measured["hits_per_variant"],
        })
