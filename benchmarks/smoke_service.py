"""CI smoke check: the evaluation service end to end.

Boots ``python -m repro serve`` as a real subprocess on a free port,
then drives it over HTTP the way a deployment would:

* ``/healthz`` answers during start-up polling;
* ``POST /evaluate`` twice with the identical description — the
  second answer must come from the memoized result cache (the
  ``/stats`` result-cache hit counter grows, the engine never sees
  the repeat);
* ``POST /sweep`` runs a sensitivity sweep through the same session;
* SIGTERM drains and the process exits 0.

Usage: ``PYTHONPATH=src python benchmarks/smoke_service.py``
Exits non-zero on any failed expectation.
"""

import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

from repro.client import ServiceClient


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _fail(process, message):
    print(f"FAIL: {message}")
    if process.poll() is None:
        process.kill()
        process.communicate(timeout=10)
    return 1


def main() -> int:
    port = _free_port()
    root = Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True)
    client = ServiceClient(f"http://127.0.0.1:{port}")

    if not client.wait_until_ready(timeout=30):
        return _fail(process, f"service never came up on :{port}")

    first = client.evaluate(device={"node": 55})
    power = first["results"][0]["power_w"]
    if not power > 0:
        return _fail(process, f"implausible power {power!r}")
    cold = client.stats()

    second = client.evaluate(device={"node": 55})
    warm = client.stats()
    if second != first:
        return _fail(process, "warm answer differs from cold answer")
    if warm["result_cache"]["hits"] != \
            cold["result_cache"]["hits"] + 1:
        return _fail(
            process,
            f"second request missed the result cache: hits "
            f"{cold['result_cache']['hits']}->"
            f"{warm['result_cache']['hits']}")
    if warm["engine"]["misses"] != cold["engine"]["misses"]:
        return _fail(process,
                     "warm repeat triggered another cold build")

    sweep = client.sweep("sensitivity", variation=0.1)
    if not sweep["rows"]:
        return _fail(process, "sensitivity sweep returned no rows")

    stats = client.stats()
    total = stats["requests_total"]
    if total < 6:
        return _fail(process, f"only {total} requests counted")

    process.send_signal(signal.SIGTERM)
    try:
        out, _ = process.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        return _fail(process, "service did not drain on SIGTERM")
    if process.returncode != 0:
        print(out)
        return _fail(process,
                     f"exit code {process.returncode} after SIGTERM")

    print(f"OK: evaluate warm hit "
          f"({warm['result_cache']['hits']} result-cache hits, "
          f"{warm['engine']['misses']} cold builds), "
          f"{len(sweep['rows'])} sweep rows, {total} requests "
          f"served, clean SIGTERM exit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
