"""Experiment E2 — Figure 9: 1 Gb DDR3 model vs datasheet values.

Same comparison as Figure 8 for the DDR3 generation (800-1600
Mbit/s/pin, 65/55 nm), plus the cross-figure claim that DDR3 draws less
than DDR2 at equal data rate.
"""

from repro.analysis import verification_report, verify_ddr2, verify_ddr3
from repro.core.idd import IddMeasure

from conftest import emit


def _best(rows, measure, rate, width):
    for row in rows:
        if (row.measure is measure and row.datarate == rate
                and row.io_width == width):
            return row.best_model
    raise AssertionError("missing comparison point")


def test_fig09_ddr3_verification(benchmark):
    rows = benchmark(verify_ddr3)
    emit(verification_report(
        rows, title="Figure 9 - 1G DDR3 model vs datasheet (mA)"
    ))

    hits = sum(row.within_spread(0.25) for row in rows)
    assert hits >= 0.75 * len(rows)

    # Idd4 above Idd0 on wide parts (column streaming dominates).
    idd0 = _best(rows, IddMeasure.IDD0, 1600e6, 16)
    idd4r = _best(rows, IddMeasure.IDD4R, 1600e6, 16)
    assert idd4r > idd0

    # The interface-standard dependency: DDR3 below DDR2 at 800 Mb/s.
    ddr2 = _best(verify_ddr2(), IddMeasure.IDD4R, 800e6, 16)
    ddr3 = _best(rows, IddMeasure.IDD4R, 800e6, 16)
    assert ddr3 < ddr2
