"""Shared fixtures and reporting helpers for the experiment benchmarks.

Every module in this directory regenerates one table or figure of the
paper (see the experiment index in DESIGN.md), asserts its shape targets,
and times the computation with pytest-benchmark.  Run with ``-s`` to see
the regenerated tables:

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro import DramPowerModel
from repro.devices import ddr3_2g_55nm, sensitivity_trio


def emit(text: str) -> None:
    """Print a regenerated artifact (visible with pytest -s)."""
    print()
    print(text)


@pytest.fixture(scope="session")
def ddr3_device():
    return ddr3_2g_55nm()


@pytest.fixture(scope="session")
def ddr3_model(ddr3_device):
    return DramPowerModel(ddr3_device)


@pytest.fixture(scope="session")
def trio():
    return sensitivity_trio()
