"""Shared fixtures and reporting helpers for the experiment benchmarks.

Every module in this directory regenerates one table or figure of the
paper (see the experiment index in DESIGN.md), asserts its shape targets,
and times the computation with pytest-benchmark.  Run with ``-s`` to see
the regenerated tables:

    pytest benchmarks/ --benchmark-only -s
"""

import json
from pathlib import Path

import pytest

from repro import DramPowerModel
from repro.devices import ddr3_2g_55nm, sensitivity_trio

#: All metric JSON files live next to the benchmarks.
METRICS_DIR = Path(__file__).parent


def emit(text: str) -> None:
    """Print a regenerated artifact (visible with pytest -s)."""
    print()
    print(text)


def record_metrics(filename: str, entries: dict) -> Path:
    """Merge ``entries`` into ``benchmarks/<filename>``.

    The shared recording path of every measurement artifact
    (``engine_cache_metrics.json``, ``parallel_metrics.json``):
    existing keys are preserved unless overwritten, output is sorted
    and stable, and an unreadable file is replaced rather than
    crashing the benchmark.
    """
    path = METRICS_DIR / filename
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(entries)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True)
                    + "\n")
    return path


@pytest.fixture(scope="session")
def ddr3_device():
    return ddr3_2g_55nm()


@pytest.fixture(scope="session")
def ddr3_model(ddr3_device):
    return DramPowerModel(ddr3_device)


@pytest.fixture(scope="session")
def trio():
    return sensitivity_trio()
