"""Experiment E3 — Figure 10: power change vs ±20 % parameter variation.

Regenerates the sensitivity Pareto for the three devices (128M SDR
170 nm, 2G DDR3 55 nm, 16G DDR5 18 nm) under the paper's pattern (IDD7
with half the reads replaced by writes), sorted by impact on the DDR3
device, and asserts the key claims: no parameter except Vdd reaches the
direct-proportionality 40 %, Vint dominates, and most parameters have
little individual influence.
"""

from repro.analysis import PARAMETERS, format_table, sensitivity
from repro.analysis.sensitivity import external_voltage_proportionality

from conftest import emit


def _impacts(device):
    return {result.name: result.impact
            for result in sensitivity(device)}


def test_fig10_sensitivity_pareto(benchmark, trio):
    sdr, ddr3, ddr5 = trio
    results = benchmark(sensitivity, ddr3)

    impacts = {device.interface: _impacts(device)
               for device in (sdr, ddr5)}
    impacts["DDR3"] = {result.name: result.impact for result in results}
    order = [result.name for result in results]
    emit(format_table(
        ["parameter (sorted by DDR3 impact)", "SDR 170nm", "DDR3 55nm",
         "DDR5 18nm"],
        [[name, f"{impacts['SDR'][name]:+.1%}",
          f"{impacts['DDR3'][name]:+.1%}",
          f"{impacts['DDR5'][name]:+.1%}"] for name in order],
        title="Figure 10 - power change for +/-20% parameter variation",
    ))

    # Vint dominates every device.
    for interface, table in impacts.items():
        top = max(table, key=lambda name: abs(table[name]))
        assert top == "Internal voltage Vint", interface

    # "Most parameters have little individual influence": at least half
    # of the parameters move power by under 10 %.
    small = sum(1 for value in impacts["DDR3"].values()
                if abs(value) < 0.10)
    assert small >= len(PARAMETERS) / 2

    # Only the external supply is directly proportional (the 40 % line);
    # it is excluded from the chart but verified here.
    assert external_voltage_proportionality(ddr3, 1.2) == \
        __import__("pytest").approx(0.20, abs=0.04)
    assert all(abs(value) < 0.40 for name, value in
               impacts["DDR3"].items()
               if name != "Internal voltage Vint")
