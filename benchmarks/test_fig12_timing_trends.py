"""Experiment E10 — Figure 12: data rate and row timing trends.

Regenerates the per-pin data rate, core frequency, prefetch and tRC
series, asserting the paper's §IV.C assumptions: data rate doubles per
interface transition while the core frequency stays flat (prefetch
absorbs the growth) and row timings barely improve.
"""

from repro.analysis import format_table, timing_trend

from conftest import emit


def test_fig12_timing_trends(benchmark):
    trend = benchmark(timing_trend)

    emit(format_table(
        ["node nm", "Gb/s/pin", "core MHz", "prefetch", "tRC ns",
         "tRRD ns"],
        [[point["node_nm"], point["datarate_gbps"],
          point["core_frequency_mhz"], int(point["prefetch"]),
          point["trc_ns"], point["trrd_ns"]] for point in trend],
        title="Figure 12 - data rate and row timing trends",
    ))

    rates = [point["datarate_gbps"] for point in trend]
    assert all(a <= b for a, b in zip(rates, rates[1:]))
    assert rates[-1] / rates[0] > 30  # bandwidth exploded...

    trcs = [point["trc_ns"] for point in trend]
    assert trcs[0] / trcs[-1] < 2.0   # ...row timing barely moved.

    cores = [point["core_frequency_mhz"] for point in trend]
    assert max(cores) / min(cores) < 2.0  # flat core frequency.

    prefetches = [int(point["prefetch"]) for point in trend]
    assert prefetches[0] == 1 and prefetches[-1] == 32
    assert all(a <= b for a, b in zip(prefetches, prefetches[1:]))
