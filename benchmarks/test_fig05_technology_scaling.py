"""Experiment E5 — Figure 5: scaling of technology-related parameters.

Regenerates the shrink-factor curves of the transistor-technology
parameters (gate oxide thicknesses, minimum channel lengths, junction
capacitances, access-transistor geometry) against the f-shrink reference
line, and asserts the paper's claim that they shrink more slowly than the
feature size.
"""

from repro.analysis import format_table
from repro.technology import SCALING_LAWS, feature_shrink, shrink_factor
from repro.technology.roadmap import nodes

from conftest import emit

FIG5_PARAMETERS = [name for name, law in SCALING_LAWS.items()
                   if law.figure == "fig5"]


def compute_curves():
    return {
        name: [shrink_factor(name, node) for node in nodes()]
        for name in FIG5_PARAMETERS
    }


def test_fig05_technology_scaling(benchmark):
    curves = benchmark(compute_curves)
    node_list = nodes()
    f_line = [feature_shrink(node) for node in node_list]

    rows = []
    for index, node in enumerate(node_list):
        row = [node, round(f_line[index], 3)]
        row.extend(round(curves[name][index], 3)
                   for name in FIG5_PARAMETERS)
        rows.append(row)
    emit(format_table(["node nm", "f-shrink"] + FIG5_PARAMETERS, rows,
                      title="Figure 5 - technology parameter scaling"))

    # All curves start at 1 at the 170 nm reference...
    for name in FIG5_PARAMETERS:
        assert abs(curves[name][0] - 1.0) < 1e-9, name
    # ...decline monotonically (dual-oxide step included)...
    for name in FIG5_PARAMETERS:
        values = curves[name]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:])), name
    # ...and sit at or above the f-shrink line at the final node.
    for name in FIG5_PARAMETERS:
        assert curves[name][-1] >= f_line[-1] * 0.999, name
