"""Ablation A1 — open vs folded bitline architecture (Table II, 75→65 nm).

Builds the same 65 nm DDR3 device with both architectures and compares
die area and power: the open (6F²) cell wins on area — the reason the
industry switched — while the power difference stays small (the folded
architecture pays for the bitline-multiplexer control lines and longer
bitlines).
"""

import pytest

from repro import DramPowerModel
from repro.core.idd import idd0
from repro.devices import build_device

from conftest import emit


def build_pair():
    open_device = build_device(65, name="65nm-open")
    folded = open_device.replace_path("floorplan.array.bitline_arch",
                                      "folded")
    folded = folded.evolve(name="65nm-folded")
    return open_device, folded


def test_ablation_bitline_architecture(benchmark):
    open_device, folded_device = benchmark(build_pair)
    open_model = DramPowerModel(open_device)
    folded_model = DramPowerModel(folded_device)

    open_area = open_model.geometry.die_area * 1e6
    folded_area = folded_model.geometry.die_area * 1e6
    open_idd0 = idd0(open_model).milliamps
    folded_idd0 = idd0(folded_model).milliamps
    emit("Ablation - open vs folded bitline at 65 nm:\n"
         f"  open   : die {open_area:.1f} mm2, IDD0 {open_idd0:.1f} mA\n"
         f"  folded : die {folded_area:.1f} mm2, IDD0 "
         f"{folded_idd0:.1f} mA")

    # The 6F²-style open cell is substantially smaller (8F² pays ~33 %
    # more cell area; die-level the gap is diluted by the periphery).
    assert folded_area > 1.15 * open_area

    # Folded adds the bitline-mux control lines to every activate.
    folded_events = {event.name for event in folded_model.events}
    open_events = {event.name for event in open_model.events}
    assert "bitline mux control lines" in folded_events
    assert "bitline mux control lines" not in open_events

    # Power penalty of folded stays moderate (same page, same data path).
    assert folded_idd0 == pytest.approx(open_idd0, rel=0.35)
