"""CI smoke check: pre-fork scale-out throughput and parity.

Boots the service twice from the real CLI entry point — once single
process, once with ``--workers 4`` sharing the same disk cache — and
drives both with the same closed-loop client load:

* responses must be byte-identical between the two deployments (and
  across repeats), so forking N processes never changes an answer;
* throughput (req/s) and latency quantiles are recorded to
  ``benchmarks/BENCH_scaleout.json``;
* on hosts with >= 4 CPUs the 4-worker fleet must clear a 3x
  throughput speedup over the single process; on smaller hosts the
  measurement is recorded but the ratio is informational only
  (forked workers time-slice one core, so no speedup exists to
  assert).

Usage: ``PYTHONPATH=src python benchmarks/smoke_scaleout.py``
Exits non-zero on any failed expectation.
"""

import http.client
import json
import os
import signal
import socket
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.client import ServiceClient

#: Distinct devices in the request mix — one per roadmap node, so the
#: model cache works but every request still evaluates a real model.
NODES = (170, 110, 90, 75, 65, 55, 44, 36)
THREADS = 8
REQUESTS_PER_THREAD = 15
SPEEDUP_FLOOR = 3.0
FLEET_WORKERS = 4


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _fail(process, message):
    print(f"FAIL: {message}")
    if process.poll() is None:
        process.kill()
        process.communicate(timeout=10)
    return 1


def _boot(workers, cache_dir):
    port = _free_port()
    root = Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "repro", "serve",
               "--port", str(port), "--cache-dir", cache_dir,
               "--result-cache", "0", "--no-affinity"]
    if workers > 1:
        command += ["--workers", str(workers)]
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True,
                               env=env)
    return process, port


def _stop(process):
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=30)
    return process.returncode, output


def _raw_evaluate(port, node):
    """One uncompressed exchange; returns the exact reply bytes."""
    blob = json.dumps({"device": {"node": node}})
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("POST", "/evaluate", body=blob,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _drive(port):
    """Closed-loop load; returns (req/s, p50 ms, p95 ms, errors)."""
    url = f"http://127.0.0.1:{port}"
    latencies = []
    errors = []
    lock = threading.Lock()

    def worker(offset):
        client = ServiceClient(url)
        for index in range(REQUESTS_PER_THREAD):
            node = NODES[(offset + index) % len(NODES)]
            started = time.perf_counter()
            try:
                client.evaluate(device={"node": node})
            except Exception as exc:  # noqa: BLE001 - tally and go on
                with lock:
                    errors.append(repr(exc))
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(THREADS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    rate = len(latencies) / wall if wall > 0 else 0.0
    p50 = statistics.median(latencies) * 1e3 if latencies else 0.0
    p95 = (sorted(latencies)[int(len(latencies) * 0.95) - 1] * 1e3
           if latencies else 0.0)
    return rate, p50, p95, errors


def _measure(workers, cache_dir, label):
    process, port = _boot(workers, cache_dir)
    client = ServiceClient(f"http://127.0.0.1:{port}")
    if not client.wait_until_ready(timeout=60):
        return None, _fail(process, f"{label}: service never ready "
                                    f"({client.last_ready_error})")
    for node in NODES:  # warm every model before the clock starts
        client.evaluate(device={"node": node})
    rate, p50, p95, errors = _drive(port)
    status, reference = _raw_evaluate(port, NODES[0])
    returncode, output = _stop(process)
    if errors:
        print(f"FAIL: {label}: {len(errors)} request errors, "
              f"first: {errors[0]}")
        return None, 1
    if status != 200:
        print(f"FAIL: {label}: parity probe answered {status}")
        return None, 1
    if returncode != 0:
        print(f"FAIL: {label}: exit code {returncode}\n{output}")
        return None, 1
    print(f"{label}: {rate:.1f} req/s, p50 {p50:.1f} ms, "
          f"p95 {p95:.1f} ms")
    return {"rate": rate, "p50": p50, "p95": p95,
            "reference": reference}, 0


def main() -> int:
    cpus = os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="repro-scaleout-") \
            as cache_dir:
        single, code = _measure(1, cache_dir, "1 worker")
        if code:
            return code
        fleet, code = _measure(FLEET_WORKERS, cache_dir,
                               f"{FLEET_WORKERS} workers")
        if code:
            return code

    if single["reference"] != fleet["reference"]:
        print("FAIL: fleet reply differs from single-process reply")
        return 1

    speedup = (fleet["rate"] / single["rate"]
               if single["rate"] > 0 else 0.0)
    metrics_path = Path(__file__).parent / "BENCH_scaleout.json"
    metrics = {
        "scaleout.cpus": cpus,
        "scaleout.workers": FLEET_WORKERS,
        "scaleout.requests": THREADS * REQUESTS_PER_THREAD,
        "scaleout.single.rps": round(single["rate"], 2),
        "scaleout.single.p50_ms": round(single["p50"], 2),
        "scaleout.single.p95_ms": round(single["p95"], 2),
        "scaleout.fleet.rps": round(fleet["rate"], 2),
        "scaleout.fleet.p50_ms": round(fleet["p50"], 2),
        "scaleout.fleet.p95_ms": round(fleet["p95"], 2),
        "scaleout.speedup": round(speedup, 2),
    }
    metrics_path.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"metrics -> {metrics_path}")

    if cpus >= FLEET_WORKERS and speedup < SPEEDUP_FLOOR:
        print(f"FAIL: {FLEET_WORKERS}-worker speedup {speedup:.2f}x "
              f"below {SPEEDUP_FLOOR}x on a {cpus}-CPU host")
        return 1
    if cpus < FLEET_WORKERS:
        print(f"OK: parity held; speedup {speedup:.2f}x recorded "
              f"(not asserted on a {cpus}-CPU host)")
    else:
        print(f"OK: parity held; speedup {speedup:.2f}x >= "
              f"{SPEEDUP_FLOOR}x on {cpus} CPUs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
