"""CI smoke check: the resilience layer under injected faults.

Two stages, both asserting the PR's acceptance criteria end to end:

1. **Executor fault tolerance**, in process: a process-backend sweep
   whose worker is SIGKILLed mid-chunk must still return bit-for-bit
   the serial result (fresh-pool retry), and a sweep whose workers
   *keep* dying must degrade to the in-parent serial fallback — both
   recorded in the engine counters.

2. **Service under load**, as a real subprocess: ``repro serve`` with
   one in-flight slot, a one-deep queue and injected handler latency
   (via ``REPRO_FAULTS``) is hammered by concurrent clients.  The
   admission bound must hold, load must actually be shed with
   ``Retry-After``, and every client must still succeed through
   backoff-and-retry.  SIGTERM must drain and exit 0.

Shed counts and client-side latency percentiles are recorded into
``benchmarks/resilience_metrics.json``.

Usage: ``PYTHONPATH=src python benchmarks/smoke_resilience.py``
Exits non-zero on any failed expectation.
"""

import functools
import json
import os
import signal
import socket
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from conftest import record_metrics  # noqa: E402

from repro.client import RetryPolicy, ServiceClient  # noqa: E402
from repro.engine import EvaluationSession  # noqa: E402
from repro.errors import ServiceError  # noqa: E402
from repro.service.faults import (power_kill_always,  # noqa: E402
                                  power_kill_once)

CLIENTS = 8


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _variants(count=6):
    from repro.devices import ddr3_2g_55nm
    base = ddr3_2g_55nm()
    return [base.scale_path("technology.c_bitline", 1.0 + 0.01 * step)
            for step in range(count)]


def check_worker_loss() -> dict:
    """Stage 1: killed pool workers must not corrupt a sweep."""
    devices = _variants()
    with tempfile.TemporaryDirectory() as scratch:
        flag = Path(scratch) / "kill"

        fn_once = functools.partial(power_kill_once, str(flag))
        serial = EvaluationSession().map(devices, fn_once)
        flag.write_text("armed")
        session = EvaluationSession()
        pooled = session.map(devices, fn_once, jobs=2,
                             backend="process")
        assert pooled == serial, \
            "kill-once sweep diverged from the serial baseline"
        once = session.stats
        assert once.pool_retries >= 1, \
            f"expected a pool retry, stats: {once}"

        fn_always = functools.partial(power_kill_always, str(flag))
        flag.write_text("armed")
        session = EvaluationSession()
        pooled = session.map(devices, fn_always, jobs=2,
                             backend="process")
        assert pooled == serial, \
            "kill-always sweep diverged from the serial baseline"
        always = session.stats
        assert always.serial_fallbacks >= 1, \
            f"expected a serial fallback, stats: {always}"
    print(f"worker-loss: retry path pool_retries="
          f"{once.pool_retries}, degradation path "
          f"serial_fallbacks={always.serial_fallbacks}, results "
          f"bit-for-bit serial-identical")
    return {"workerloss_pool_retries": once.pool_retries,
            "workerloss_serial_fallbacks": always.serial_fallbacks}


def check_saturated_service() -> dict:
    """Stage 2: a tiny saturated server, retrying clients, SIGTERM."""
    port = _free_port()
    root = Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env["REPRO_FAULTS"] = json.dumps([
        {"kind": "latency", "path": "/evaluate", "seconds": 0.05}])
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--max-inflight", "1",
         "--max-queue", "1", "--retry-after", "0",
         "--request-timeout", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True)
    base_url = f"http://127.0.0.1:{port}"
    policy = RetryPolicy(max_attempts=30, base_delay=0.02,
                         max_delay=0.2)
    try:
        probe = ServiceClient(base_url)
        assert probe.wait_until_ready(timeout=30), \
            f"service never came up: {probe.last_ready_error}"

        latencies = []
        errors = []
        lock = threading.Lock()

        def hammer():
            client = ServiceClient(base_url, retry=policy,
                                   breaker=None)
            started = time.perf_counter()
            try:
                client.evaluate(device={"node": 55})
            except ServiceError as error:
                with lock:
                    errors.append(error)
                return
            elapsed = (time.perf_counter() - started) * 1e3
            with lock:
                latencies.append(elapsed)

        threads = [threading.Thread(target=hammer)
                   for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == [], \
            f"{len(errors)} clients failed despite retries: " \
            f"{errors[0]}"

        stats = probe.stats()
        admission = stats["admission"]
        assert admission["max_in_flight"] <= 1, \
            f"in-flight bound violated: {admission}"
        assert admission["shed_total"] > 0, \
            f"saturation never shed anything: {admission}"

        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
        assert process.returncode == 0, \
            f"exit code {process.returncode} after SIGTERM:\n{out}"
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)

    latencies.sort()
    p50 = statistics.median(latencies)
    p95 = latencies[int(0.95 * len(latencies))]
    print(f"saturation: {CLIENTS} retrying clients all succeeded "
          f"against 1 slot + 1 queue; shed 429={admission['shed_busy']}"
          f" 503={admission['shed_timeout']}, max in-flight "
          f"{admission['max_in_flight']}, client latency p50 "
          f"{p50:.0f} ms p95 {p95:.0f} ms, clean SIGTERM exit")
    return {"saturation_clients": CLIENTS,
            "saturation_shed_busy": admission["shed_busy"],
            "saturation_shed_timeout": admission["shed_timeout"],
            "saturation_admitted": admission["admitted"],
            "saturation_latency_p50_ms": round(p50, 3),
            "saturation_latency_p95_ms": round(p95, 3)}


def main() -> int:
    metrics = {}
    metrics.update(check_worker_loss())
    metrics.update(check_saturated_service())
    path = record_metrics("resilience_metrics.json", metrics)
    print(f"OK: resilience metrics recorded to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
