"""Experiment E7 — Figure 7: scaling of core (on-pitch) device widths and
lengths: bitline sense-amplifier devices and the row circuitry in the
array block.

The paper scales these by scaling the length with the feature size while
keeping the width-over-length ratio constant — a single exponent below 1
for both W and L.
"""

from repro.analysis import format_table
from repro.technology import SCALING_LAWS, feature_shrink, shrink_factor
from repro.technology.roadmap import nodes

from conftest import emit

FIG7_PARAMETERS = [name for name, law in SCALING_LAWS.items()
                   if law.figure == "fig7"]


def compute_curves():
    return {
        name: [shrink_factor(name, node) for node in nodes()]
        for name in FIG7_PARAMETERS
    }


def test_fig07_core_device_scaling(benchmark):
    curves = benchmark(compute_curves)
    node_list = nodes()

    sample = ["w_sa_n", "l_sa_n", "w_swd_n", "w_nset", "w_wl_ctrl_load_p"]
    rows = []
    for index, node in enumerate(node_list):
        row = [node, round(feature_shrink(node), 3)]
        row.extend(round(curves[name][index], 3) for name in sample)
        rows.append(row)
    emit(format_table(["node nm", "f-shrink"] + sample, rows,
                      title="Figure 7 - core device W/L scaling "
                            "(sample of the 21 device parameters)"))

    # Constant W/L: widths and lengths of the same device share one
    # scaling factor.
    for w_name, l_name in (("w_sa_n", "l_sa_n"), ("w_sa_p", "l_sa_p"),
                           ("w_eq", "l_eq"), ("w_nset", "l_nset")):
        for index in range(len(node_list)):
            assert abs(curves[w_name][index]
                       - curves[l_name][index]) < 1e-9

    # All core devices shrink, but slower than the feature size.
    f_final = feature_shrink(node_list[-1])
    for name in FIG7_PARAMETERS:
        assert curves[name][-1] < 1.0, name
        assert curves[name][-1] > f_final, name
