"""CI smoke check: high-throughput trace replay, all backends.

Generates a gzipped k6 trace of ~400k transactions (open-page
expansion grows it past one million DRAM commands) whose addresses
span the full decoder width including (channel, rank) bits, then
holds every replay backend to the same bar:

* ``serial`` — the scalar oracle, timed as the baseline;
* ``vector`` — the columnar kernel, timed and run under
  ``tracemalloc`` (batching must keep the footprint constant);
* ``process`` — rank-sharded replay with exact merge;
* a real ``python -m repro serve`` subprocess receives the same file
  as a gzipped chunked ``POST /trace`` upload and must reproduce the
  library result bit for bit, emitting incremental snapshots.

All backends must agree bit for bit.  The ≥``MIN_SPEEDUP``× columnar
floor is asserted only when numpy is present and the host has at
least ``MIN_CPUS_FOR_FLOOR`` CPUs (mirroring ``smoke_scaleout``'s
host gating, so tiny CI runners report throughput without failing).

Throughput and footprint land in ``benchmarks/BENCH_trace.json``.

Usage: ``PYTHONPATH=src python benchmarks/smoke_trace.py``
Exits non-zero on any failed expectation.
"""

import gzip
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro import DramPowerModel
from repro.client import ServiceClient
from repro.devices import build_device
from repro.trace import (AddressDecoder, columnar_available,
                         replay_trace_file)

#: Transactions to generate; expansion yields ~3 commands each.
TRANSACTIONS = 400_000

#: Commands the expanded trace must at least reach.
MIN_COMMANDS = 1_000_000

#: Peak-memory envelope for the columnar fold (bytes).  Batching
#: bounds the working set regardless of trace length; a materializing
#: evaluator would need hundreds of MB here.
PEAK_BUDGET = 64 * 1024 * 1024

#: Columnar-over-serial floor, asserted only on capable hosts.
MIN_SPEEDUP = 5.0

#: Host gate for the speedup assertion (mirrors smoke_scaleout).
MIN_CPUS_FOR_FLOOR = 4

SNAPSHOT_EVERY = 250_000

#: Shard geometry: 1 channel bit + 1 rank bit = 4 replay shards.
CHANNEL_BITS = 1
RANK_BITS = 1


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _generate(path: Path, address_bits: int) -> None:
    """Write a deterministic pseudo-random k6 trace, gzipped, with
    addresses spanning the full decoder width so every (channel,
    rank) shard sees traffic."""
    state = 0x2C011
    mask = (1 << address_bits) - 1
    with gzip.open(path, "wt") as handle:
        for i in range(TRANSACTIONS):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            op = "P_MEM_WR" if state % 3 == 0 else "P_MEM_RD"
            address = (state * 2654435761) & mask
            handle.write(f"0x{address:X} {op} {i * 16}\n")
            if i % 50_000 == 49_999:
                handle.write(f"0x0 REF {i * 16 + 8}\n")


def _timed_replay(model, path, decoder, backend, jobs=None,
                  traced=False):
    """Replay on one backend; returns (accumulator, seconds, peak)."""
    if traced:
        tracemalloc.start()
    started = time.perf_counter()
    accumulator, used = replay_trace_file(model, path,
                                          decoder=decoder,
                                          backend=backend, jobs=jobs)
    elapsed = time.perf_counter() - started
    peak = 0
    if traced:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return accumulator, used, elapsed, peak


def _fingerprint(accumulator):
    result = accumulator.result()
    return (result.energy, result.duration, result.counts,
            result.row_hits, result.row_misses, result.row_conflicts,
            result.data_bits, result.breakdown.values,
            accumulator.commands_seen)


def _service_pass(path: Path):
    """Upload the file to a live service; returns (records, seconds)."""
    port = _free_port()
    root = Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True)
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}",
                               timeout=180.0)
        if not client.wait_until_ready(timeout=30):
            raise RuntimeError(f"service never came up on :{port}")
        started = time.perf_counter()
        records = list(client.trace_stream(
            path, device={"node": 55},
            snapshot_every=SNAPSHOT_EVERY))
        elapsed = time.perf_counter() - started
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            process.communicate(timeout=30)
    return records, elapsed


def main() -> int:
    device = build_device(55)
    model = DramPowerModel(device)
    decoder = AddressDecoder.from_device(device,
                                         channel_bits=CHANNEL_BITS,
                                         rank_bits=RANK_BITS)
    cpus = os.cpu_count() or 1

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "smoke.trc.gz"
        _generate(path, decoder.address_bits)
        size_mb = path.stat().st_size / 1e6
        print(f"generated {TRANSACTIONS} transactions "
              f"({size_mb:.1f} MB gzipped, "
              f"{decoder.num_shards} shards)")

        serial, _, serial_seconds, _ = _timed_replay(
            model, path, decoder, "serial")
        commands = serial.commands_seen
        serial_rate = commands / serial_seconds / 1e6
        print(f"serial : {commands} commands in "
              f"{serial_seconds:.1f}s ({serial_rate:.2f} Mcmd/s)")
        if commands < MIN_COMMANDS:
            print(f"FAIL: expanded trace has only {commands} "
                  f"commands (< {MIN_COMMANDS})")
            return 1
        baseline = _fingerprint(serial)

        # ``vector`` degrades to serial without numpy (marker fires);
        # timing it anyway keeps the no-numpy leg honest end to end.
        # The memory envelope runs as a separate pass: tracemalloc
        # slows allocation-heavy code several-fold and would poison
        # the throughput number.
        vector, vector_used, vector_seconds, _ = _timed_replay(
            model, path, decoder, "vector")
        vector_rate = commands / vector_seconds / 1e6
        print(f"vector : {vector_seconds:.1f}s "
              f"({vector_rate:.2f} Mcmd/s, ran as {vector_used})")
        if _fingerprint(vector) != baseline:
            print("FAIL: vector replay diverged from serial")
            return 1
        traced, _, _, peak = _timed_replay(model, path, decoder,
                                           "vector", traced=True)
        print(f"vector : peak {peak / 1e6:.1f} MB under tracemalloc")
        if _fingerprint(traced) != baseline:
            print("FAIL: traced vector replay diverged from serial")
            return 1
        if peak > PEAK_BUDGET:
            print(f"FAIL: columnar fold peaked at {peak} bytes "
                  f"(budget {PEAK_BUDGET})")
            return 1

        sharded, sharded_used, sharded_seconds, _ = _timed_replay(
            model, path, decoder, "process",
            jobs=min(decoder.num_shards, max(2, cpus)))
        sharded_rate = commands / sharded_seconds / 1e6
        print(f"sharded: {sharded_seconds:.1f}s "
              f"({sharded_rate:.2f} Mcmd/s, ran as {sharded_used})")
        if _fingerprint(sharded) != baseline:
            print("FAIL: sharded replay diverged from serial")
            return 1

        speedup = serial_seconds / vector_seconds
        if columnar_available() and cpus >= MIN_CPUS_FOR_FLOOR:
            if speedup < MIN_SPEEDUP:
                print(f"FAIL: columnar speedup {speedup:.1f}x "
                      f"< {MIN_SPEEDUP}x floor")
                return 1
        else:
            print(f"note: speedup floor not asserted "
                  f"(numpy={columnar_available()}, cpus={cpus})")

        records, upload_seconds = _service_pass(path)
        if not records or records[-1].get("done") is not True:
            print(f"FAIL: upload stream ended without a done "
                  f"record ({records[-1:]})")
            return 1
        snapshots = [r for r in records if "snapshot" in r]
        if not snapshots:
            print("FAIL: no incremental snapshots were streamed")
            return 1
        final = records[-1]["result"]
        # The upload decodes with the service's default (shardless)
        # decoder, so compare against a matching library replay.
        reference, _, _, _ = _timed_replay(
            model, path, AddressDecoder.from_device(device), "auto")
        if final["energy_j"] != reference.result().energy:
            print(f"FAIL: uploaded energy {final['energy_j']!r} != "
                  f"library {reference.result().energy!r}")
            return 1
        expected_counts = {command.value: count for command, count
                           in reference.result().counts.items()}
        if final["counts"] != expected_counts:
            print(f"FAIL: count mismatch: {final['counts']} != "
                  f"{expected_counts}")
            return 1
        print(f"service: parity OK, {len(snapshots)} snapshots, "
              f"upload+evaluate {upload_seconds:.1f}s")

    metrics_path = Path(__file__).parent / "BENCH_trace.json"
    metrics = {
        "trace.transactions": TRANSACTIONS,
        "trace.commands": commands,
        "trace.gzip_mb": round(size_mb, 2),
        "trace.shards": decoder.num_shards,
        "trace.cpus": cpus,
        "trace.numpy": columnar_available(),
        "trace.library.mcmd_per_s.serial": round(serial_rate, 3),
        "trace.library.mcmd_per_s.vector": round(vector_rate, 3),
        "trace.library.mcmd_per_s.sharded": round(sharded_rate, 3),
        "trace.library.speedup.vector": round(speedup, 2),
        "trace.library.speedup.sharded": round(
            serial_seconds / sharded_seconds, 2),
        "trace.library.peak_mb": round(peak / 1e6, 2),
        "trace.upload.seconds": round(upload_seconds, 2),
        "trace.upload.mcmd_per_s": round(
            commands / upload_seconds / 1e6, 3),
        "trace.upload.snapshots": len(snapshots),
    }
    metrics_path.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"OK: wrote {metrics_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
