"""CI smoke check: streaming trace ingestion end to end.

Generates a gzipped k6 trace of ~400k transactions (which open-page
expansion grows past one million DRAM commands), then checks the two
production paths against each other:

* the library one-shot (``evaluate_trace_file``) runs under
  ``tracemalloc`` and must stay inside a constant-memory envelope —
  the whole point of the streaming fold is that trace length never
  shows up in the footprint;
* a real ``python -m repro serve`` subprocess receives the same file
  as a gzipped chunked ``POST /trace`` upload and must reproduce the
  library result bit for bit, emitting incremental snapshots along
  the way.

Throughput and footprint land in ``benchmarks/BENCH_trace.json``.

Usage: ``PYTHONPATH=src python benchmarks/smoke_trace.py``
Exits non-zero on any failed expectation.
"""

import gzip
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro import DramPowerModel
from repro.client import ServiceClient
from repro.devices import build_device
from repro.trace import evaluate_trace_file

#: Transactions to generate; expansion yields ~3 commands each.
TRANSACTIONS = 400_000

#: Commands the expanded trace must at least reach.
MIN_COMMANDS = 1_000_000

#: Peak-memory envelope for the streaming fold (bytes).  A
#: materializing evaluator would need hundreds of MB here.
PEAK_BUDGET = 32 * 1024 * 1024

SNAPSHOT_EVERY = 250_000


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _generate(path: Path) -> None:
    """Write a deterministic pseudo-random k6 trace, gzipped."""
    state = 0x2C011
    with gzip.open(path, "wt") as handle:
        for i in range(TRANSACTIONS):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            op = "P_MEM_WR" if state % 3 == 0 else "P_MEM_RD"
            address = (state * 64) & 0xFFFFFFF
            handle.write(f"0x{address:X} {op} {i * 16}\n")
            if i % 50_000 == 49_999:
                handle.write(f"0x0 REF {i * 16 + 8}\n")


def _library_pass(path: Path):
    """One-shot evaluation under tracemalloc; returns metrics."""
    model = DramPowerModel(build_device(55))
    tracemalloc.start()
    started = time.perf_counter()
    result = evaluate_trace_file(model, path)
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def _service_pass(path: Path):
    """Upload the file to a live service; returns (records, seconds)."""
    port = _free_port()
    root = Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True)
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}",
                               timeout=180.0)
        if not client.wait_until_ready(timeout=30):
            raise RuntimeError(f"service never came up on :{port}")
        started = time.perf_counter()
        records = list(client.trace_stream(
            path, device={"node": 55},
            snapshot_every=SNAPSHOT_EVERY))
        elapsed = time.perf_counter() - started
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            process.communicate(timeout=30)
    return records, elapsed


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "smoke.trc.gz"
        _generate(path)
        size_mb = path.stat().st_size / 1e6
        print(f"generated {TRANSACTIONS} transactions "
              f"({size_mb:.1f} MB gzipped)")

        result, lib_seconds, peak = _library_pass(path)
        commands = sum(result.counts.values())
        rate = commands / lib_seconds / 1e6
        print(f"library (traced): {commands} commands in "
              f"{lib_seconds:.1f}s ({rate:.2f} Mcmd/s), "
              f"peak {peak / 1e6:.1f} MB")
        if commands < MIN_COMMANDS:
            print(f"FAIL: expanded trace has only {commands} "
                  f"commands (< {MIN_COMMANDS})")
            return 1
        if peak > PEAK_BUDGET:
            print(f"FAIL: streaming fold peaked at {peak} bytes "
                  f"(budget {PEAK_BUDGET})")
            return 1

        records, upload_seconds = _service_pass(path)
        if not records or records[-1].get("done") is not True:
            print(f"FAIL: upload stream ended without a done "
                  f"record ({records[-1:]})")
            return 1
        snapshots = [r for r in records if "snapshot" in r]
        if not snapshots:
            print("FAIL: no incremental snapshots were streamed")
            return 1
        final = records[-1]["result"]
        if final["energy_j"] != result.energy:
            print(f"FAIL: uploaded energy {final['energy_j']!r} != "
                  f"library {result.energy!r}")
            return 1
        expected_counts = {command.value: count
                           for command, count in result.counts.items()}
        if final["counts"] != expected_counts:
            print(f"FAIL: count mismatch: {final['counts']} != "
                  f"{expected_counts}")
            return 1
        print(f"service: parity OK, {len(snapshots)} snapshots, "
              f"upload+evaluate {upload_seconds:.1f}s")

    metrics_path = Path(__file__).parent / "BENCH_trace.json"
    metrics = {
        "trace.transactions": TRANSACTIONS,
        "trace.commands": commands,
        "trace.gzip_mb": round(size_mb, 2),
        "trace.library.traced_mcmd_per_s": round(rate, 3),
        "trace.library.peak_mb": round(peak / 1e6, 2),
        "trace.upload.seconds": round(upload_seconds, 2),
        "trace.upload.mcmd_per_s": round(
            commands / upload_seconds / 1e6, 3),
        "trace.upload.snapshots": len(snapshots),
    }
    metrics_path.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"OK: wrote {metrics_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
