"""Experiment E11 — Figure 13: energy consumption and die area trends.

The paper's headline result: energy per bit fell ≈1.5× per generation
from the 170 nm generation (2000) to 44 nm (2010), but the forecast to
the 16 nm generation improves only ≈1.2× per generation because voltage
scaling is slowing down.
"""

from repro.analysis import (
    energy_reduction_factors,
    format_table,
    generation_trend,
)

from conftest import emit


def test_fig13_energy_trends(benchmark):
    points = benchmark(generation_trend)

    emit(format_table(
        ["node nm", "interface", "density", "die mm2", "eff %",
         "pJ/bit idd4", "pJ/bit idd7"],
        [[point.node_nm, point.interface,
          (f"{point.density_bits >> 30}G"
           if point.density_bits >= 1 << 30
           else f"{point.density_bits >> 20}M"),
          point.die_area_mm2, point.array_efficiency * 100,
          point.energy_idd4_pj, point.energy_idd7_pj]
         for point in points],
        title="Figure 13 - energy per bit and die area trends",
    ))

    # Monotone decline of energy per bit.
    energies = [point.energy_idd7_pj for point in points]
    assert all(a > b for a, b in zip(energies, energies[1:]))

    # ~1.5x per generation historically, ~1.2x in the forecast, with the
    # flattening clearly visible.
    early, late = energy_reduction_factors(points)
    emit(f"reduction per generation: {early:.2f}x (170->44nm), "
         f"{late:.2f}x (44->16nm); paper: ~1.5x and ~1.2x")
    assert 1.40 < early < 1.75
    assert 1.10 < late < 1.35
    assert late < early - 0.15

    # Die areas in the commodity band the paper targets.
    for point in points:
        assert 25 < point.die_area_mm2 < 95, point.node_nm

    # Total decline over ten years 2000-2010: more than an order of
    # magnitude (1.5^7 ≈ 17×).
    by_node = {point.node_nm: point for point in points}
    assert by_node[170].energy_idd7_pj / by_node[44].energy_idd7_pj > 10
