"""CI smoke check: a warm sensitivity sweep must reuse pipeline stages.

Builds the base model once (warming the per-stage cache), then runs a
single-parameter sensitivity sweep through the same
:class:`~repro.engine.EvaluationSession`.  Every variant dirties only
the stages its swept field feeds, so the session must report a
non-zero stage hit rate — if it does not, incremental evaluation has
silently degraded into full rebuilds.

Usage: ``PYTHONPATH=src python benchmarks/smoke_incremental.py``
Exits non-zero when no stage was reused or results drift from cold
builds.
"""

import sys

from repro.core import DramPowerModel
from repro.core.idd import idd0
from repro.devices import ddr3_2g_55nm
from repro.engine import EvaluationSession


def _current(model):
    return idd0(model).current


def main(argv):
    base = ddr3_2g_55nm()
    devices = [base.scale_path("voltages.vdd", 1.0 + 0.01 * step)
               for step in range(1, 17)]

    session = EvaluationSession()
    session.model(base)
    swept = session.map(devices, _current)
    stats = session.stats
    print(f"warm sweep: {stats}")

    cold = [_current(DramPowerModel(device)) for device in devices]
    if swept != cold:
        print("FAIL: incremental sweep differs from cold builds")
        return 1
    if stats.stage_hits == 0 or stats.stage_hit_rate == 0.0:
        print(f"FAIL: warm sweep reused no stages "
              f"(hits={stats.stage_hits}, "
              f"hit-rate={stats.stage_hit_rate:.2f})")
        return 1
    print(f"OK: stage hit rate {stats.stage_hit_rate:.1%} "
          f"({stats.stage_hits} hits), results match cold builds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
