"""Experiment E1 — Figure 8: 1 Gb DDR2 model vs datasheet values.

Regenerates the comparison of model currents against the five-vendor
datasheet spread for Idd0 / Idd4R / Idd4W across 400-800 Mbit/s/pin and
x4/x8/x16, and asserts the paper's shape claims: good agreement with the
band, currents growing with data rate and width.
"""

from repro.analysis import verification_report, verify_ddr2
from repro.core.idd import IddMeasure

from conftest import emit


def _row(rows, measure, rate, width):
    for row in rows:
        if (row.measure is measure and row.datarate == rate
                and row.io_width == width):
            return row
    raise AssertionError("missing comparison point")


def test_fig08_ddr2_verification(benchmark):
    rows = benchmark(verify_ddr2)
    emit(verification_report(
        rows, title="Figure 8 - 1G DDR2 model vs datasheet (mA)"
    ))

    # Shape target: the large majority of points inside the widened
    # vendor spread, no point off by more than ~2x.
    hits = sum(row.within_spread(0.25) for row in rows)
    assert hits >= 0.75 * len(rows)
    assert all(0.4 < row.ratio_to_mean < 2.0 for row in rows)

    # Currents grow with data rate...
    for width in (4, 8, 16):
        values = [_row(rows, IddMeasure.IDD4R, rate, width).best_model
                  for rate in (400e6, 533e6, 667e6, 800e6)]
        assert all(a < b for a, b in zip(values, values[1:]))
    # ...and with I/O width.
    values = [_row(rows, IddMeasure.IDD4R, 800e6, width).best_model
              for width in (4, 8, 16)]
    assert all(a < b for a, b in zip(values, values[1:]))
