"""Experiment E-ENG — engine model cache: cold vs warm sweep cost.

A 100-variant sensitivity-style sweep (bitline capacitance scaled over
a fine grid) is evaluated twice through one
:class:`~repro.engine.EvaluationSession`: the first (cold) pass builds
every model, the second (warm) pass must answer every lookup from the
fingerprint-keyed cache.  The warm pass is required to be at least 3x
faster, and the cache counters must show a perfect second-pass hit
rate.  Measured numbers are written to
``benchmarks/engine_cache_metrics.json`` next to
``baseline_metrics.json``.
"""

import time

from repro.core.idd import idd7_mixed
from repro.engine import EvaluationSession

from conftest import emit, record_metrics

VARIANTS = 100


def _variants(device):
    return [device.scale_path("technology.c_bitline",
                              1.0 + 0.002 * step)
            for step in range(VARIANTS)]


def _sweep(session, devices):
    return session.map(devices,
                       lambda model: idd7_mixed(model).power)


def test_engine_cache_cold_vs_warm(benchmark, ddr3_device):
    devices = _variants(ddr3_device)
    session = EvaluationSession()

    started = time.perf_counter()
    cold = _sweep(session, devices)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = _sweep(session, devices)
    warm_seconds = time.perf_counter() - started

    # The cached models are bit-identical, so the results are too.
    assert warm == cold
    stats = session.stats
    assert stats.misses == VARIANTS
    assert stats.hits == VARIANTS
    assert stats.hit_rate == 0.5

    speedup = cold_seconds / warm_seconds
    emit(f"engine cache: cold {cold_seconds * 1e3:.1f} ms, "
         f"warm {warm_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x "
         f"({stats})")
    assert speedup >= 3.0

    record_metrics("engine_cache_metrics.json", {
        "engine_cache.variants": VARIANTS,
        "engine_cache.cold_ms": round(cold_seconds * 1e3, 2),
        "engine_cache.warm_ms": round(warm_seconds * 1e3, 2),
        "engine_cache.speedup": round(speedup, 2),
        "engine_cache.hit_rate_second_pass": 1.0,
        "engine_cache.build_seconds": round(stats.build_seconds, 4),
    })

    # pytest-benchmark records the steady-state (warm) sweep cost.
    benchmark(_sweep, session, devices)


def test_engine_parallel_map_matches_serial(ddr3_device):
    devices = _variants(ddr3_device)[:16]
    serial = _sweep(EvaluationSession(), devices)
    threaded = EvaluationSession().map(
        devices, lambda model: idd7_mixed(model).power, jobs=4)
    assert threaded == serial
