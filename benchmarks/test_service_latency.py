"""Experiment E-SVC — warm evaluation service: request latency.

Measures the end-to-end HTTP round-trip of ``POST /evaluate`` against
one in-process :class:`~repro.service.EvaluationService` and records
the numbers into ``benchmarks/service_metrics.json``:

* the *cold* request pays one model build inside the daemon;
* every *warm* repeat of the identical description is answered from
  the memoized result cache — the whole point of keeping the daemon
  alive — and is asserted to actually hit it (the ``/stats``
  result-cache hit counter grows, the engine never sees the repeat);
* a sensitivity sweep is timed cold and warm the same way to show the
  reuse extends across endpoints sharing the session.

The warm median is additionally required to beat the cold request:
transport costs stay, the build disappears.
"""

import statistics
import threading
import time

from repro.client import ServiceClient
from repro.service import create_service

from conftest import emit, record_metrics

WARM_REPEATS = 25


def _serve():
    service = create_service(host="127.0.0.1", port=0)
    thread = threading.Thread(target=service.serve_forever,
                              daemon=True)
    thread.start()
    return service, thread


def _timed(call):
    started = time.perf_counter()
    call()
    return (time.perf_counter() - started) * 1e3


def test_service_request_latency():
    service, thread = _serve()
    client = ServiceClient(
        f"http://127.0.0.1:{service.server_port}")
    try:
        evaluate = lambda: client.evaluate(device={"node": 55})
        cold_ms = _timed(evaluate)
        after_cold = client.stats()

        warm_ms = sorted(_timed(evaluate)
                         for _ in range(WARM_REPEATS))
        warm = client.stats()

        sweep = lambda: client.sweep("sensitivity", variation=0.1)
        sweep_cold_ms = _timed(sweep)
        sweep_warm_ms = _timed(sweep)
    finally:
        service.shutdown()
        service.server_close()
        thread.join(timeout=5)

    # Every repeat was answered from the memoized result cache: its
    # hit counter grew by exactly the repeat count while the engine
    # saw no further lookup and no further cold build.
    assert after_cold["engine"].get("disk_hits", 0) == 0
    assert warm["result_cache"]["hits"] >= \
        after_cold["result_cache"]["hits"] + WARM_REPEATS
    assert warm["engine"]["misses"] == after_cold["engine"]["misses"]
    assert warm["engine"]["lookups"] == \
        after_cold["engine"]["lookups"]

    warm_median_ms = statistics.median(warm_ms)
    assert warm_median_ms < cold_ms

    emit(f"POST /evaluate: cold {cold_ms:.1f} ms, warm median "
         f"{warm_median_ms:.2f} ms over {WARM_REPEATS} repeats "
         f"(p95 {warm_ms[int(0.95 * len(warm_ms))]:.2f} ms); "
         f"sensitivity sweep cold {sweep_cold_ms:.0f} ms, warm "
         f"{sweep_warm_ms:.0f} ms; result-cache hits "
         f"{warm['result_cache']['hits']}")
    record_metrics("service_metrics.json", {
        "evaluate_cold_ms": round(cold_ms, 3),
        "evaluate_warm_median_ms": round(warm_median_ms, 3),
        "evaluate_warm_p95_ms": round(
            warm_ms[int(0.95 * len(warm_ms))], 3),
        "evaluate_warm_repeats": WARM_REPEATS,
        "sweep_sensitivity_cold_ms": round(sweep_cold_ms, 3),
        "sweep_sensitivity_warm_ms": round(sweep_warm_ms, 3),
        "result_cache_hits": warm["result_cache"]["hits"],
    })
