"""Ablation A5 — row-buffer locality vs energy per bit (trace engine).

"Spatial locality (to achieve short signaling paths) ... [is] important
in all power reduction proposals" (paper §VI).  This ablation sweeps the
row-hit rate of a random access stream on the 55 nm DDR3 and quantifies
how quickly the energy per bit deteriorates as locality is lost — the
workload-side complement of the §V activation-narrowing schemes.
"""

from repro import DramPowerModel
from repro.analysis import format_table
from repro.core.trace import evaluate_trace
from repro.workloads import random_trace, streaming_trace

from conftest import emit

HIT_RATES = (0.9, 0.7, 0.5, 0.3, 0.1)
ACCESSES = 2000


def sweep(device):
    model = DramPowerModel(device)
    results = [("streaming",
                evaluate_trace(model, streaming_trace(device, ACCESSES)))]
    for hit_rate in HIT_RATES:
        trace = random_trace(device, ACCESSES, row_hit_rate=hit_rate,
                             seed=3)
        results.append((f"random {hit_rate:.0%}",
                        evaluate_trace(model, trace)))
    return results


def test_ablation_row_locality(benchmark, ddr3_device):
    results = benchmark(sweep, ddr3_device)

    emit(format_table(
        ["workload", "hit rate", "Gb/s", "mW", "pJ/bit"],
        [[name, round(result.row_hit_rate, 2),
          round(result.data_bits / result.duration / 1e9, 1),
          round(result.average_power * 1e3, 1),
          round(result.energy_per_bit * 1e12, 1)]
         for name, result in results],
        title=f"Ablation - row locality on {ddr3_device.name} "
              f"({ACCESSES} accesses)",
    ))

    by_name = dict(results)
    streaming = by_name["streaming"]
    worst = by_name["random 10%"]

    # Streaming approaches peak bandwidth and minimal energy.
    assert streaming.row_hit_rate > 0.9
    assert (streaming.data_bits / streaming.duration
            > 0.8 * ddr3_device.spec.peak_bandwidth)

    # Energy per bit decays monotonically with locality...
    energies = [by_name[f"random {rate:.0%}"].energy_per_bit
                for rate in HIT_RATES]
    assert all(a < b for a, b in zip(energies, energies[1:]))

    # ...and fully random access costs several times the streaming bit.
    assert worst.energy_per_bit > 2.5 * streaming.energy_per_bit

    # All generated traces were strictly timing-legal (evaluate_trace
    # would have raised otherwise).
    assert worst.counts is not None
