"""Ablation A6 — the §VI process options across generations.

"Power reduction techniques used in logic devices therefore become more
important for DRAMs in the future" — low-k dielectrics and low-voltage
transistors must save a growing share of power from DDR3 to the DDR5
forecast.
"""

from repro.analysis import format_table
from repro.schemes import combined_process_stack, process_option_savings

from conftest import emit


def sweep(devices):
    rows = {}
    for device in devices:
        savings = process_option_savings(device)
        savings["combined"] = combined_process_stack(device)
        rows[device.interface] = savings
    return rows


def test_ablation_process_options(benchmark, trio):
    rows = benchmark(sweep, trio)

    option_names = [name for name in rows["DDR3"] if name != "combined"]
    emit(format_table(
        ["option"] + list(rows.keys()),
        [[name] + [f"{rows[interface][name]:.1%}"
                   for interface in rows] for name in
         option_names + ["combined"]],
        title="Ablation - Section VI process options "
              "(power saving per device)",
    ))

    # Every option saves on every generation.
    for interface, savings in rows.items():
        for name, value in savings.items():
            assert value > 0, (interface, name)

    # The combined stack grows in importance toward the forecast.
    assert rows["DDR5"]["combined"] > rows["SDR"]["combined"]

    # Low-k matters more on the wiring-heavy modern devices.
    assert (rows["DDR5"]["low-k-dielectric"]
            > rows["SDR"]["low-k-dielectric"])
