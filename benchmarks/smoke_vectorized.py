"""CI smoke check: the columnar kernel must engage and agree.

Runs a 32-point voltage family through one
:class:`~repro.engine.EvaluationSession` under ``backend="auto"`` and
checks three things the vectorized-sweep PR promises:

* the auto policy actually routes the family through the vector
  kernel (``vector_batches``/``vector_builds`` counters move);
* nothing fell back or downgraded (``vector_fallbacks == 0``,
  ``vector_downgrades == 0``);
* the folded powers agree with cold scalar builds to 1e-9 relative.

Usage: ``PYTHONPATH=src python benchmarks/smoke_vectorized.py``
Exits non-zero when numpy is missing, the kernel does not engage, or
results drift from the scalar oracle.
"""

import sys

from repro.core import DramPowerModel
from repro.devices import ddr3_2g_55nm
from repro.engine import EvaluationSession, numpy_available

POINTS = 32
TOLERANCE = 1e-9


def _power(model):
    return model.pattern_power().power


def main(argv):
    if not numpy_available():
        print("FAIL: numpy not importable - the vectorized smoke "
              "check requires the repro[vector] extra")
        return 1

    base = ddr3_2g_55nm()
    devices = [base.scale_path("voltages.vint", 1.0 - 0.002 * step)
               for step in range(1, POINTS + 1)]

    session = EvaluationSession()
    folded = session.map(devices, _power, backend="auto")
    stats = session.stats
    print(f"auto sweep: {stats}")

    if stats.vector_batches == 0 or stats.vector_builds != POINTS:
        print(f"FAIL: auto did not fold the family "
              f"(batches={stats.vector_batches}, "
              f"builds={stats.vector_builds}, expected {POINTS})")
        return 1
    if stats.vector_fallbacks or stats.vector_downgrades:
        print(f"FAIL: kernel degraded "
              f"(fallbacks={stats.vector_fallbacks}, "
              f"downgrades={stats.vector_downgrades})")
        return 1

    for index, device in enumerate(devices):
        oracle = _power(DramPowerModel(device))
        drift = abs(folded[index] - oracle) / oracle
        if drift > TOLERANCE:
            print(f"FAIL: variant {index} drifts {drift:.2e} "
                  f"from the scalar oracle (tolerance {TOLERANCE})")
            return 1

    print(f"OK: {stats.vector_builds} variants folded in "
          f"{stats.vector_batches} batch(es), "
          f"{stats.vector_seconds * 1e3:.1f} ms, parity within "
          f"{TOLERANCE}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
