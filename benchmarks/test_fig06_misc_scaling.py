"""Experiment E6 — Figure 6: scaling of capacitances, stripe widths and
miscellaneous logic device widths.

Includes the two disruptive wiring steps (Cu metallization at 44 nm) and
asserts the near-constant cell capacitance the refresh requirement
demands.
"""

from repro.analysis import format_table
from repro.technology import (
    SCALING_LAWS,
    auxiliary_for_node,
    feature_shrink,
    shrink_factor,
)
from repro.technology.roadmap import nodes

from conftest import emit

FIG6_PARAMETERS = [name for name, law in SCALING_LAWS.items()
                   if law.figure == "fig6" and law.exponent > 0.0]


def compute_curves():
    return {
        name: [shrink_factor(name, node) for node in nodes()]
        for name in FIG6_PARAMETERS
    }


def test_fig06_misc_scaling(benchmark):
    curves = benchmark(compute_curves)
    node_list = nodes()

    rows = []
    for index, node in enumerate(node_list):
        row = [node, round(feature_shrink(node), 3)]
        row.extend(round(curves[name][index], 3)
                   for name in FIG6_PARAMETERS)
        rows.append(row)
    emit(format_table(["node nm", "f-shrink"] + FIG6_PARAMETERS, rows,
                      title="Figure 6 - capacitance and stripe scaling"))

    # Cell capacitance is nearly flat: the refresh-time requirement.
    c_cell = curves["c_cell"]
    assert c_cell[-1] > 0.7

    # The Cu step appears between 55 and 44 nm in the wire capacitance.
    index_55 = list(node_list).index(55)
    index_44 = list(node_list).index(44)
    smooth = (44 / 55) ** SCALING_LAWS["c_wire_signal"].exponent
    actual = curves["c_wire_signal"][index_44] \
        / curves["c_wire_signal"][index_55]
    assert actual < smooth * 0.9

    # Stripe widths shrink slower than the feature size (the on-pitch
    # area pressure of §II).
    for name in ("width_sa_stripe", "width_swd_stripe"):
        assert curves[name][-1] > feature_shrink(node_list[-1])

    # The auxiliary accessor agrees with the curves.
    aux = auxiliary_for_node(170)
    assert aux["width_sa_stripe"] > auxiliary_for_node(16)[
        "width_sa_stripe"]
