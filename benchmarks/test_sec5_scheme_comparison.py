"""Experiment E12 — Section V: comparison of power-reduction schemes.

Evaluates the published proposals on the 2 Gb DDR3 55 nm device and
asserts the qualitative conclusions the paper draws: narrowing the page
activation saves the most row energy but carries on-pitch area cost
(worst for single-subarray access), the paper's own 8:1 CSL architecture
gets most of the benefit at no stripe cost, and spatial locality plus
voltage reduction matter everywhere.
"""

from repro.schemes import compare_schemes, scheme_report

from conftest import emit


def test_sec5_scheme_comparison(benchmark, ddr3_device):
    results = benchmark(compare_schemes, ddr3_device)
    emit(scheme_report(
        results, title="Section V - power reduction schemes on "
                       f"{ddr3_device.name}"
    ))

    by_name = {result.scheme: result for result in results}

    # Activation-narrowing schemes slash activate energy.
    assert by_name["selective-bitline-activation"].act_energy_saving > 0.7
    assert by_name["single-subarray-access"].act_energy_saving > 0.7

    # SSA pays far more area than SBA for the same energy here — the
    # paper's feasibility argument about the sense-amplifier stripe.
    sba = by_name["selective-bitline-activation"]
    ssa = by_name["single-subarray-access"]
    assert ssa.area_overhead > 2 * sba.area_overhead

    # The paper's own proposal: close to SBA's saving at zero stripe
    # area cost.
    csl = by_name["csl-ratio-reduction"]
    assert csl.area_overhead == 0.0
    assert csl.power_saving > 0.8 * sba.power_saving

    # Voltage reduction cuts deep across all operations.
    low_voltage = by_name["low-voltage-operation"]
    assert low_voltage.power_saving > 0.2
    assert low_voltage.act_energy_saving > 0.2

    # Wiring-only schemes save much less on a commodity DDR3.
    assert by_name["segmented-data-lines"].power_saving \
        < 0.3 * sba.power_saving

    # Every scheme saves something, none breaks the model.
    for result in results:
        assert result.power_saving > 0
        assert result.modified.power > 0
