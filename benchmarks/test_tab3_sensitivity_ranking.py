"""Experiment E4 — Table III: top-10 sensitivity ranking per generation.

Regenerates the three-column ranking (128M SDR 170 nm, 2G DDR3 55 nm,
16G DDR5 18 nm) and asserts the paper's structural claims: Vint ranks
first everywhere, and importance shifts from direct array parameters to
signal wiring and logic circuitry across generations.
"""

from repro.analysis import format_table, sensitivity, top_ranking

from conftest import emit


def test_tab3_sensitivity_ranking(benchmark, trio):
    sdr, ddr3, ddr5 = trio
    rankings = benchmark(
        lambda: {device.interface: top_ranking(device)
                 for device in (sdr, ddr3, ddr5)}
    )

    emit(format_table(
        ["#", "128M SDR 170nm", "2G DDR3 55nm", "16G DDR5 18nm"],
        [[index + 1, rankings["SDR"][index], rankings["DDR3"][index],
          rankings["DDR5"][index]] for index in range(10)],
        title="Table III - top 10 ranking of sensitivity to parameters",
    ))

    # Row 1 of Table III: internal voltage Vint everywhere.
    for interface in ("SDR", "DDR3", "DDR5"):
        assert rankings[interface][0] == "Internal voltage Vint"

    # Array → wiring/logic shift: compare impact magnitudes directly.
    def impact(device, name):
        for result in sensitivity(device):
            if result.name == name:
                return result.magnitude
        raise AssertionError(name)

    assert impact(ddr5, "Specific wire capacitance") > impact(
        sdr, "Specific wire capacitance")
    assert impact(ddr5, "Bitline capacitance") < impact(
        sdr, "Bitline capacitance")
    assert impact(ddr5, "Wordline voltage Vpp") < impact(
        sdr, "Wordline voltage Vpp")

    # Logic parameters populate the top ten of the modern column
    # (Table III lists gates, device widths and the density figures).
    for name in ("Number of logic gates", "Width PFET logic",
                 "Width NFET logic"):
        assert name in rankings["DDR5"], name
    assert ("Logic wiring density" in rankings["DDR5"]
            or "Logic device density" in rankings["DDR5"])
