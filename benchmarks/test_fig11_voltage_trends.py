"""Experiment E9 — Figure 11: DRAM voltage trends 170 nm → 16 nm.

Regenerates the four voltage curves and asserts the headline: voltage
scaling slows down — the main reason the energy-per-bit curve of
Figure 13 flattens.
"""

from repro.analysis import format_table, voltage_trend

from conftest import emit


def test_fig11_voltage_trends(benchmark):
    trend = benchmark(voltage_trend)

    emit(format_table(
        ["node nm", "year", "Vdd", "Vint", "Vbl", "Vpp"],
        [[point["node_nm"], int(point["year"]), point["vdd"],
          point["vint"], point["vbl"], point["vpp"]] for point in trend],
        title="Figure 11 - voltage trends",
    ))

    by_node = {point["node_nm"]: point for point in trend}

    # Monotone non-increasing voltages.
    for key in ("vdd", "vint", "vbl", "vpp"):
        values = [point[key] for point in trend]
        assert all(a >= b for a, b in zip(values, values[1:])), key

    # Historical era (170 → 44 nm) drops Vdd by more than 2x; the
    # forecast era (44 → 16 nm) by well under 1.5x: scaling slowdown.
    assert by_node[170]["vdd"] / by_node[44]["vdd"] > 2.0
    assert by_node[44]["vdd"] / by_node[16]["vdd"] < 1.5

    # Rail ordering at every node.
    for point in trend:
        assert point["vpp"] > point["vdd"] >= point["vint"] >= point["vbl"]
