"""CI smoke check: a warm disk cache must answer every lookup.

Runs a small sweep twice against the persistent model cache
(``REPRO_CACHE_DIR`` / ``--cache-dir`` semantics of the library): the
first pass may build cold and populates the store, the second pass uses
a brand-new session — the same situation as the next CLI run or the
next CI job restoring the cache directory — and is required to report
a 1.0 hit rate with zero cold builds.

Usage: ``PYTHONPATH=src python benchmarks/smoke_warm_cache.py [dir]``
Exits non-zero when the warm pass built anything.
"""

import sys

from repro.core.idd import idd7_mixed
from repro.devices import ddr3_2g_55nm
from repro.engine import EvaluationSession, default_cache_dir


def _power(model):
    return idd7_mixed(model).power


def main(argv):
    cache_dir = argv[1] if len(argv) > 1 else str(default_cache_dir())
    base = ddr3_2g_55nm()
    devices = [base.scale_path("technology.c_bitline",
                               1.0 + 0.005 * step)
               for step in range(20)]

    cold_session = EvaluationSession(cache_dir=cache_dir)
    cold = cold_session.map(devices, _power)
    print(f"pass 1 ({cache_dir}): {cold_session.stats}")

    warm_session = EvaluationSession(cache_dir=cache_dir)
    warm = warm_session.map(devices, _power)
    stats = warm_session.stats
    print(f"pass 2 ({cache_dir}): {stats}")

    if warm != cold:
        print("FAIL: warm results differ from cold results")
        return 1
    if stats.misses != 0 or stats.hit_rate != 1.0:
        print(f"FAIL: warm pass hit rate {stats.hit_rate:.2f} with "
              f"{stats.misses} cold builds (expected 1.0 / 0)")
        return 1
    print("OK: warm hit rate 1.0, zero cold builds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
