"""Experiment E-PAR — backends and disk cache: sweep wall-clock cost.

Two measurements feed ``benchmarks/parallel_metrics.json``:

* a 400-sample Monte-Carlo sweep evaluated on the serial, thread and
  process backends of one :class:`~repro.engine.EvaluationSession`.
  The model is pure Python, so threads cannot beat serial under the
  GIL; the process backend shards the samples across worker processes
  and is required to be at least 2x faster than serial on runners
  with four or more usable cores (the assertion is skipped on smaller
  machines, but the measured numbers are always recorded together
  with the core count);
* a cold-vs-disk-warm pass over a 60-variant sweep through the
  persistent on-disk model cache: the second (warm) process answers
  every lookup from disk — a required 1.0 hit rate with zero cold
  builds.

Determinism is asserted throughout: every backend's results equal the
serial run bit-for-bit.
"""

import os
import time

from repro.analysis.montecarlo import monte_carlo
from repro.core.idd import idd7_mixed
from repro.engine import EvaluationSession
from repro.engine.executor import default_jobs

from conftest import emit, record_metrics

SAMPLES = 400
DISK_VARIANTS = 60


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _sample_distributions(device, jobs=None, backend=None):
    return monte_carlo(device, samples=SAMPLES, seed=11, jobs=jobs,
                       backend=backend)


def test_montecarlo_backend_scaling(ddr3_device):
    cores = _usable_cores()
    workers = max(2, default_jobs())

    started = time.perf_counter()
    serial = _sample_distributions(ddr3_device)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    threaded = _sample_distributions(ddr3_device, jobs=workers,
                                     backend="thread")
    thread_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pooled = _sample_distributions(ddr3_device, jobs=workers,
                                   backend="process")
    process_seconds = time.perf_counter() - started

    # Every backend reproduces the serial sweep bit-for-bit.
    assert [d.samples for d in threaded] == \
        [d.samples for d in serial]
    assert [d.samples for d in pooled] == \
        [d.samples for d in serial]

    process_speedup = serial_seconds / process_seconds
    thread_speedup = serial_seconds / thread_seconds
    emit(f"montecarlo x{SAMPLES}: serial {serial_seconds * 1e3:.0f} ms, "
         f"thread {thread_seconds * 1e3:.0f} ms "
         f"({thread_speedup:.2f}x), "
         f"process {process_seconds * 1e3:.0f} ms "
         f"({process_speedup:.2f}x) on {cores} cores / "
         f"{workers} workers")

    record_metrics("parallel_metrics.json", {
        "parallel.samples": SAMPLES,
        "parallel.cores": cores,
        "parallel.workers": workers,
        "parallel.serial_ms": round(serial_seconds * 1e3, 1),
        "parallel.thread_ms": round(thread_seconds * 1e3, 1),
        "parallel.process_ms": round(process_seconds * 1e3, 1),
        "parallel.thread_speedup": round(thread_speedup, 2),
        "parallel.process_speedup": round(process_speedup, 2),
        "parallel.bit_for_bit_identical": True,
    })

    if cores >= 4:
        assert process_speedup >= 2.0, (
            f"process backend only {process_speedup:.2f}x over serial "
            f"on {cores} cores")


def _disk_sweep(session, devices):
    return session.map(devices, _power)


def _power(model):
    return idd7_mixed(model).power


def test_disk_cache_cold_vs_warm(tmp_path, ddr3_device):
    cache_dir = tmp_path / "model-cache"
    devices = [ddr3_device.scale_path("technology.c_bitline",
                                      1.0 + 0.003 * step)
               for step in range(DISK_VARIANTS)]

    cold_session = EvaluationSession(cache_dir=cache_dir)
    started = time.perf_counter()
    cold = _disk_sweep(cold_session, devices)
    cold_seconds = time.perf_counter() - started
    assert cold_session.stats.misses == DISK_VARIANTS
    assert cold_session.stats.disk_writes == DISK_VARIANTS

    # A brand-new session simulates the next CLI run / CI job.
    warm_session = EvaluationSession(cache_dir=cache_dir)
    started = time.perf_counter()
    warm = _disk_sweep(warm_session, devices)
    warm_seconds = time.perf_counter() - started

    assert warm == cold
    stats = warm_session.stats
    assert stats.misses == 0, "warm pass must have zero cold builds"
    assert stats.disk_hits == DISK_VARIANTS
    assert stats.hit_rate == 1.0

    speedup = cold_seconds / warm_seconds
    emit(f"disk cache x{DISK_VARIANTS}: cold "
         f"{cold_seconds * 1e3:.1f} ms, warm "
         f"{warm_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x "
         f"({stats})")

    record_metrics("parallel_metrics.json", {
        "disk_cache.variants": DISK_VARIANTS,
        "disk_cache.cold_ms": round(cold_seconds * 1e3, 2),
        "disk_cache.warm_ms": round(warm_seconds * 1e3, 2),
        "disk_cache.speedup": round(speedup, 2),
        "disk_cache.warm_hit_rate": stats.hit_rate,
        "disk_cache.warm_cold_builds": stats.misses,
    })

    # Warm must not be slower; it usually wins by ~2-3x (unpickle vs
    # full geometry + event build).
    assert speedup >= 1.0
