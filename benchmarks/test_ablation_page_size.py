"""Ablation A4 — page size vs activation energy (§V).

Two ways to shrink the effective page are compared on the 55 nm DDR3:

* *activation narrowing* (the §V proposals): the physical array is
  unchanged and only a fraction of the page is activated — activate
  energy scales with the fraction while the read path is untouched;
* *reorganising the device* (fewer column bits, more row bits): activate
  energy also falls, but the array blocks grow taller and the column
  lines longer, so read energy **rises** — the geometric feedback that
  makes naive page-size reduction unattractive and motivates the paper's
  CSL-ratio architecture.
"""

import pytest

from repro import DramPowerModel
from repro.analysis import format_table
from repro.description import Command
from repro.schemes.library import _scale_activation

from conftest import emit

FRACTIONS = (1.0, 0.5, 0.25, 0.0625)


def sweep_narrowing(device):
    base = DramPowerModel(device)
    results = []
    for fraction in FRACTIONS:
        model = DramPowerModel(
            device, events=_scale_activation(base.events, fraction)
        )
        results.append((fraction,
                        model.operation_energy(Command.ACT),
                        model.operation_energy(Command.RD)))
    return results


def test_ablation_page_size(benchmark, ddr3_device):
    results = benchmark(sweep_narrowing, ddr3_device)

    page = ddr3_device.spec.page_bits
    emit(format_table(
        ["activated bits", "fraction", "E_act pJ", "E_rd pJ"],
        [[int(page * fraction), fraction, round(act * 1e12, 1),
          round(read * 1e12, 1)] for fraction, act, read in results],
        title="Ablation - activation narrowing on "
              f"{ddr3_device.name} (2 KB physical page)",
    ))

    acts = [act for _, act, _ in results]
    reads = [read for _, _, read in results]

    # Activate energy tracks the activated fraction nearly linearly at
    # first (halving the page nearly halves the energy)...
    assert acts[0] / acts[1] == pytest.approx(2.0, rel=0.15)
    # ...but the fixed master-wordline/decode/row-logic part (~10 % of
    # an activate) caps the saving of aggressive narrowing.
    assert 5.0 < acts[0] / acts[-1] < 16.0
    assert all(a > b for a, b in zip(acts, acts[1:]))
    # The read path is genuinely untouched by narrowing.
    for read in reads[1:]:
        assert read == pytest.approx(reads[0], rel=1e-9)

    # Contrast: reorganising the device instead (half the columns, twice
    # the rows) makes the read path *more* expensive — taller blocks,
    # longer column select and master data lines.
    reorganised = ddr3_device.replace_path("spec.col_bits", 9)
    reorganised = reorganised.replace_path("spec.row_bits", 15)
    model = DramPowerModel(reorganised)
    assert model.operation_energy(Command.RD) > reads[0]
    assert model.operation_energy(Command.ACT) < acts[0]
