"""HTTP-layer semantics: keep-alive, gzip, auth, close-on-error."""

import gzip
import http.client
import json
import socket
import threading

import pytest

from repro.client import ServiceClient
from repro.errors import ServiceError
from repro.service import create_service
from repro.service.auth import (API_KEYS_ENV, ApiKeyAuth, parse_keys)


def _serve(svc):
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    return thread


def _stop(svc, thread):
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=5)
    assert not thread.is_alive()


@pytest.fixture()
def service():
    svc = create_service(host="127.0.0.1", port=0)
    thread = _serve(svc)
    yield svc
    _stop(svc, thread)


@pytest.fixture()
def client(service):
    return ServiceClient(f"http://127.0.0.1:{service.server_port}")


@pytest.fixture()
def auth_service():
    svc = create_service(host="127.0.0.1", port=0,
                         auth=ApiKeyAuth(["sekrit"]))
    thread = _serve(svc)
    yield svc
    _stop(svc, thread)


def _http(service, method, path, body=None, headers=None):
    """One exchange on a dedicated connection; returns the response
    with ``.body`` preloaded (so the connection can be closed)."""
    conn = http.client.HTTPConnection(
        "127.0.0.1", service.server_port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        response.body = response.read()
        return response
    finally:
        conn.close()


class TestKeepAlive:
    def test_sequential_requests_reuse_one_connection(self, client):
        client.healthz()
        client.stats()
        client.evaluate(device={})
        client.stats()
        assert client.connections_opened == 1

    def test_http10_request_still_served(self, service):
        with socket.create_connection(
                ("127.0.0.1", service.server_port),
                timeout=30) as sock:
            sock.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
            sock.settimeout(30)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        assert b" 200 " in head.splitlines()[0]
        assert json.loads(body)["status"] == "ok"

    def test_http10_stream_request_rejected(self, service):
        blob = json.dumps({"device": {}, "stream": True}).encode()
        with socket.create_connection(
                ("127.0.0.1", service.server_port),
                timeout=30) as sock:
            sock.sendall(
                b"POST /evaluate HTTP/1.0\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(blob), blob))
            sock.settimeout(30)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert b" 400 " in data.splitlines()[0]

    def test_post_error_closes_connection(self, service):
        response = _http(service, "POST", "/evaluate",
                         body=b"this is not json",
                         headers={"Content-Type": "text/plain"})
        assert response.status == 400
        assert response.getheader("Connection") == "close"

    def test_worker_header_present(self, service):
        response = _http(service, "GET", "/healthz")
        assert response.getheader("X-Repro-Worker") == "0"


class TestGzip:
    def test_large_reply_gzipped_on_request(self, service):
        payload = json.dumps(
            {"devices": [{}, {"node": 44}, {}]}).encode()
        plain = _http(
            service, "POST", "/evaluate", body=payload,
            headers={"Content-Type": "application/json"})
        assert plain.status == 200
        assert plain.getheader("Content-Encoding") is None
        assert len(plain.body) >= service.gzip_min_bytes
        packed = _http(
            service, "POST", "/evaluate", body=payload,
            headers={"Content-Type": "application/json",
                     "Accept-Encoding": "gzip"})
        assert packed.status == 200
        assert packed.getheader("Content-Encoding") == "gzip"
        assert "Accept-Encoding" in packed.getheader("Vary", "")
        assert gzip.decompress(packed.body) == plain.body
        assert service.counters.gzipped == 1

    def test_small_reply_not_gzipped(self, service):
        response = _http(service, "GET", "/healthz",
                         headers={"Accept-Encoding": "gzip"})
        assert response.status == 200
        assert response.getheader("Content-Encoding") is None
        assert service.counters.gzipped == 0

    def test_client_transparently_decompresses(self, client):
        result = client.evaluate(devices=[{}, {"node": 44}])
        assert len(result["results"]) == 2
        assert result["results"][0]["power_w"] > 0


class TestAuth:
    def test_parse_keys_splits_commas_and_whitespace(self):
        assert parse_keys("a, b  c,,") == ("a", "b", "c")
        assert parse_keys("") == ()

    def test_from_options_prefers_explicit_keys(self):
        auth = ApiKeyAuth.from_options(
            keys=["k1"], env={API_KEYS_ENV: "e1,e2"})
        assert auth is not None and auth.check("k1")
        assert not auth.check("e1")

    def test_from_options_falls_back_to_env_then_open(self):
        auth = ApiKeyAuth.from_options(env={API_KEYS_ENV: "e1 e2"})
        assert auth is not None and len(auth) == 2
        assert auth.check("e2")
        assert ApiKeyAuth.from_options(env={}) is None

    def test_check_rejects_missing_and_wrong(self):
        auth = ApiKeyAuth(["sekrit"])
        assert not auth.check(None)
        assert not auth.check("")
        assert not auth.check("sekri")
        assert auth.check("sekrit")

    def test_requests_refused_without_key(self, auth_service):
        url = f"http://127.0.0.1:{auth_service.server_port}"
        anonymous = ServiceClient(url)
        with pytest.raises(ServiceError) as err:
            anonymous.stats()
        assert err.value.status == 401
        wrong = ServiceClient(url, api_key="wrong")
        with pytest.raises(ServiceError) as err:
            wrong.evaluate(device={})
        assert err.value.status == 401
        assert auth_service.counters.auth_failures == 2

    def test_healthz_open_and_key_accepted(self, auth_service):
        url = f"http://127.0.0.1:{auth_service.server_port}"
        anonymous = ServiceClient(url)
        assert anonymous.healthz()["status"] == "ok"
        keyed = ServiceClient(url, api_key="sekrit")
        assert keyed.stats()["status"] == "ok"
        result = keyed.evaluate(device={})
        assert result["results"][0]["power_w"] > 0
        assert auth_service.counters.auth_failures == 0

    def test_streaming_requires_key_too(self, auth_service):
        url = f"http://127.0.0.1:{auth_service.server_port}"
        with pytest.raises(ServiceError) as err:
            ServiceClient(url).sweep_stream("corners")
        assert err.value.status == 401
        keyed = ServiceClient(url, api_key="sekrit")
        records = list(keyed.sweep_stream("corners"))
        assert records[-1]["done"] is True
