"""Tests for command patterns, including hypothesis invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.description import Command, Pattern
from repro.errors import DescriptionError


class TestParse:
    def test_paper_example(self):
        # "Pattern loop= act nop wrt nop rd nop pre nop": 12.5 % each of
        # act/wrt/rd/pre and 50 % nop (paper §III.B.4).
        pattern = Pattern.parse("act nop wrt nop rd nop pre nop")
        assert len(pattern) == 8
        assert pattern.weight(Command.ACT) == pytest.approx(0.125)
        assert pattern.weight(Command.WR) == pytest.approx(0.125)
        assert pattern.weight(Command.RD) == pytest.approx(0.125)
        assert pattern.weight(Command.PRE) == pytest.approx(0.125)
        assert pattern.weight(Command.NOP) == pytest.approx(0.5)

    def test_aliases(self):
        pattern = Pattern.parse("activate precharge read write noop nop")
        counts = pattern.counts()
        assert counts[Command.ACT] == 1
        assert counts[Command.PRE] == 1
        assert counts[Command.RD] == 1
        assert counts[Command.WR] == 1
        assert counts[Command.NOP] == 2

    def test_commas_accepted(self):
        pattern = Pattern.parse("act, nop, pre, nop")
        assert len(pattern) == 4

    def test_case_insensitive(self):
        assert Pattern.parse("ACT NOP PRE NOP").counts()[Command.ACT] == 1

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(DescriptionError):
            Pattern.parse("act foo pre")

    def test_empty_rejected(self):
        with pytest.raises(DescriptionError):
            Pattern.parse("   ")


class TestValidation:
    def test_unbalanced_act_pre_rejected(self):
        with pytest.raises(DescriptionError):
            Pattern.parse("act act pre nop")

    def test_pure_nop_allowed(self):
        pattern = Pattern.parse("nop")
        assert not pattern.has_column_traffic

    def test_column_traffic_flag(self):
        assert Pattern.parse("rd nop").has_column_traffic
        assert not Pattern.parse("act nop pre nop").has_column_traffic


class TestRates:
    def test_rate_scales_with_clock(self):
        pattern = Pattern.parse("act nop pre nop")
        assert pattern.rate(Command.ACT, 800e6) == pytest.approx(200e6)

    def test_str_round_trip(self):
        pattern = Pattern.parse("act nop wrt nop rd nop pre nop")
        assert Pattern.parse(str(pattern)) == pattern


class TestFromCounts:
    def test_spreads_commands(self):
        pattern = Pattern.from_counts(
            {Command.ACT: 2, Command.PRE: 2}, length=16
        )
        counts = pattern.counts()
        assert counts[Command.ACT] == 2
        assert counts[Command.PRE] == 2
        assert counts[Command.NOP] == 12

    def test_rejects_overflow(self):
        with pytest.raises(DescriptionError):
            Pattern.from_counts({Command.ACT: 9, Command.PRE: 9}, length=16)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=8))
    def test_counts_preserved(self, rows, reads):
        length = 64
        pattern = Pattern.from_counts(
            {Command.ACT: rows, Command.PRE: rows, Command.RD: reads},
            length=length,
        )
        counts = pattern.counts()
        assert counts[Command.ACT] == rows
        assert counts[Command.PRE] == rows
        assert counts[Command.RD] == reads
        assert len(pattern) == length


@given(st.lists(st.sampled_from(["act nop pre", "rd", "wr", "nop"]),
                min_size=1, max_size=8))
def test_weights_sum_to_one(chunks):
    pattern = Pattern.parse(" ".join(chunks))
    total = sum(pattern.weight(command) for command in Command)
    assert total == pytest.approx(1.0)
