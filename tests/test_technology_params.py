"""Tests for the 39-parameter technology description."""

import pytest

from repro.description import TechnologyParameters
from repro.errors import DescriptionError
from repro.technology.scaling import BASELINE_55NM


class TestParameterCount:
    def test_exactly_39_parameters(self):
        # "In total 39 parameters are used in the model to describe the
        # technology" (paper §III.B.3).
        assert BASELINE_55NM.parameter_count == 39

    def test_items_cover_all_fields(self):
        names = dict(BASELINE_55NM.items())
        assert len(names) == 39
        assert names["c_bitline"] == BASELINE_55NM.c_bitline

    def test_as_dict_round_trip(self):
        rebuilt = TechnologyParameters(**BASELINE_55NM.as_dict())
        assert rebuilt == BASELINE_55NM


class TestValidation:
    def test_rejects_negative_capacitance(self):
        with pytest.raises(DescriptionError):
            BASELINE_55NM.scaled(c_bitline=-1e-15)

    def test_rejects_zero_oxide(self):
        with pytest.raises(DescriptionError):
            BASELINE_55NM.scaled(tox_logic=0.0)

    def test_rejects_share_above_one(self):
        with pytest.raises(DescriptionError):
            BASELINE_55NM.scaled(share_bl_wl=1.5)

    def test_accepts_share_zero(self):
        assert BASELINE_55NM.scaled(share_bl_wl=0.0).share_bl_wl == 0.0

    def test_rejects_activity_above_one(self):
        with pytest.raises(DescriptionError):
            BASELINE_55NM.scaled(mwl_dec_activity=1.2)


class TestDerivedCapacitances:
    def test_gate_cap_scales_with_area(self):
        tech = BASELINE_55NM
        one = tech.gate_capacitance(1e-6, 1e-7, 4e-9)
        two = tech.gate_capacitance(2e-6, 1e-7, 4e-9)
        assert two == pytest.approx(2 * one)

    def test_gate_cap_inverse_in_oxide(self):
        tech = BASELINE_55NM
        thin = tech.gate_capacitance(1e-6, 1e-7, 2e-9)
        thick = tech.gate_capacitance(1e-6, 1e-7, 4e-9)
        assert thin == pytest.approx(2 * thick)

    def test_logic_gate_cap_uses_min_length_default(self):
        tech = BASELINE_55NM
        assert tech.logic_gate_cap(1e-6) == pytest.approx(
            tech.gate_capacitance(1e-6, tech.lmin_logic, tech.tox_logic)
        )

    def test_hv_gate_cap_thicker_oxide_than_logic(self):
        tech = BASELINE_55NM
        assert tech.hv_gate_cap(1e-6) < tech.logic_gate_cap(1e-6) \
            * tech.lmin_hv / tech.lmin_logic * 1.01

    def test_cell_gate_cap_is_tiny(self):
        # A single cell access transistor gate is a small fraction of fF.
        assert 1e-18 < BASELINE_55NM.cell_gate_cap() < 1e-15

    def test_junction_cap_linear_in_width(self):
        tech = BASELINE_55NM
        assert tech.logic_junction_cap(2e-6) == pytest.approx(
            2 * tech.logic_junction_cap(1e-6)
        )

    def test_device_load_is_gate_plus_junction(self):
        tech = BASELINE_55NM
        width = 0.5e-6
        assert tech.logic_device_load(width) == pytest.approx(
            tech.logic_gate_cap(width) + tech.logic_junction_cap(width)
        )

    def test_gate_cap_rejects_bad_geometry(self):
        with pytest.raises(DescriptionError):
            BASELINE_55NM.gate_capacitance(0.0, 1e-7, 4e-9)


class TestScaledCopy:
    def test_scaled_returns_new_object(self):
        copy = BASELINE_55NM.scaled(c_cell=30e-15)
        assert copy.c_cell == pytest.approx(30e-15)
        assert BASELINE_55NM.c_cell != copy.c_cell

    def test_plausible_bitline_to_cell_ratio(self):
        # Bitline capacitance is several times the cell capacitance —
        # the charge-sharing signal is a fraction of Vbl/2.
        ratio = BASELINE_55NM.c_bitline / BASELINE_55NM.c_cell
        assert 2.0 < ratio < 10.0
