"""Device-diff tool tests plus pattern-vs-trace engine consistency."""

import pytest

from repro import DramPowerModel, Pattern
from repro.analysis.compare import compare_report, diff_devices
from repro.core.trace import TraceCommand, evaluate_trace
from repro.description import Command
from repro.devices import build_device


class TestDiffDevices:
    def test_identical_devices_no_diff(self, ddr3_device):
        assert diff_devices(ddr3_device, ddr3_device) == []

    def test_voltage_diff_detected(self, ddr3_device):
        lowered = ddr3_device.replace_path("voltages.vint", 1.2)
        diffs = diff_devices(ddr3_device, lowered)
        assert len(diffs) == 1
        assert diffs[0].path == "voltages.vint"
        assert diffs[0].ratio == pytest.approx(1.2 / 1.4)

    def test_technology_diff_detected(self, ddr3_device):
        changed = ddr3_device.scale_path("technology.c_bitline", 1.5)
        diffs = diff_devices(ddr3_device, changed)
        assert [diff.path for diff in diffs] == ["technology.c_bitline"]

    def test_architecture_diff_detected(self, ddr3_device):
        folded = ddr3_device.replace_path(
            "floorplan.array.bitline_arch", "folded")
        paths = {diff.path for diff in diff_devices(ddr3_device, folded)}
        assert "floorplan.array.bitline_arch" in paths

    def test_report_renders(self, ddr3_device):
        other = build_device(65, interface="DDR3",
                             density_bits=1 << 30, datarate=1333e6)
        text = compare_report(ddr3_device, other)
        assert "Differing parameters" in text
        assert "IDD comparison" in text
        assert "idd4r" in text

    def test_identical_report(self, ddr3_device):
        text = compare_report(ddr3_device, ddr3_device)
        assert "parameter-identical" in text

    def test_cli_compare(self, tmp_path, capsys, ddr3_device):
        from repro.cli import main
        from repro.dsl import dump
        left = tmp_path / "a.dram"
        right = tmp_path / "b.dram"
        dump(ddr3_device, left)
        dump(ddr3_device.replace_path("voltages.vint", 1.3), right)
        assert main(["compare", str(left), str(right)]) == 0
        out = capsys.readouterr().out
        assert "voltages.vint" in out


class TestPatternTraceConsistency:
    """The steady-state pattern engine and the trace engine must price
    the same workload identically."""

    def test_row_cycle_loop(self, ddr3_model):
        device = ddr3_model.device
        f_clock = device.spec.f_ctrlclock
        trc_cycles = int(round(device.timing.trc * f_clock))
        # Pattern: one ACT + one PRE per tRC worth of slots.
        slots = [Command.NOP] * trc_cycles
        slots[0] = Command.ACT
        tras_slot = int(round(device.timing.tras * f_clock))
        slots[tras_slot] = Command.PRE
        pattern_power = ddr3_model.pattern_power(Pattern(tuple(slots)))

        # Equivalent trace: many repetitions of the same loop.
        loops = 50
        trace = []
        for index in range(loops):
            base = index * device.timing.trc
            trace.append(TraceCommand(base, Command.ACT, bank=0))
            trace.append(TraceCommand(base + device.timing.tras,
                                      Command.PRE, bank=0))
        result = evaluate_trace(ddr3_model, trace)
        # The trace duration carries one extra tail tRC; correct for it.
        effective = result.energy / (loops * device.timing.trc)
        assert effective == pytest.approx(
            pattern_power.power,
            rel=0.03,
        )

    def test_read_stream(self, ddr3_model):
        device = ddr3_model.device
        spec = device.spec
        gap = spec.burst_length / spec.datarate
        timing = device.timing
        # Open one row per bank, stream reads gapless; compare the
        # steady-state section against IDD4R plus the row overhead.
        from repro.core.idd import idd4r
        reads = 400
        trace = [TraceCommand(0.0, Command.ACT, bank=0)]
        start = timing.trcd
        for index in range(reads):
            trace.append(TraceCommand(start + index * gap, Command.RD,
                                      bank=0))
        trace.append(TraceCommand(
            start + (reads - 1) * gap + timing.trtp, Command.PRE,
            bank=0))
        result = evaluate_trace(ddr3_model, trace)
        stream_power = (reads * ddr3_model.operation_energy(Command.RD)
                        / (reads * gap)
                        + ddr3_model.background_power)
        assert stream_power == pytest.approx(
            idd4r(ddr3_model).power.power, rel=1e-9)
        # The trace's total energy dominated by the same stream power.
        assert result.energy > 0.8 * stream_power * (reads * gap)
