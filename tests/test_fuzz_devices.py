"""Property-based fuzzing of the device builder across the design space.

Any device the builder accepts must yield a physically coherent model:
positive energies, correct IDD orderings, valid geometry, and a lossless
DSL round trip.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import DramPowerModel
from repro.core.idd import idd0, idd2n, idd4r
from repro.description import Command
from repro.devices import build_device
from repro.dsl import dumps, loads
from repro.errors import ReproError
from repro.technology.roadmap import ROADMAP, nodes

_GBIT = 1 << 30
_MBIT = 1 << 20

node_strategy = st.sampled_from(nodes())
width_strategy = st.sampled_from([4, 8, 16, 32])
density_shift = st.integers(min_value=-1, max_value=1)


def _build(node, io_width, shift):
    entry = ROADMAP[node]
    density = entry.density_bits << shift if shift >= 0 \
        else entry.density_bits >> (-shift)
    try:
        return build_device(node, io_width=io_width,
                            density_bits=density)
    except ReproError:
        return None


@settings(max_examples=60, deadline=None)
@given(node_strategy, width_strategy, density_shift)
def test_built_devices_are_coherent(node, io_width, shift):
    device = _build(node, io_width, shift)
    assume(device is not None)
    model = DramPowerModel(device)

    # Energies positive and ordered.
    act = model.operation_energy(Command.ACT)
    pre = model.operation_energy(Command.PRE)
    read = model.operation_energy(Command.RD)
    assert act > 0 and read > 0
    assert pre < act

    # IDD orderings.
    standby = idd2n(model).current
    assert idd0(model).current > standby
    assert idd4r(model).current > standby

    # Geometry sane.
    geometry = model.geometry
    assert 0.2 < geometry.array_efficiency < 0.8
    assert geometry.die_area > 1e-6  # > 1 mm2

    # Page organisation consistent.
    assert device.swls_per_activate >= 1
    assert device.csls_per_access >= 1


@settings(max_examples=25, deadline=None)
@given(node_strategy, width_strategy)
def test_dsl_round_trip_any_device(node, io_width):
    device = _build(node, io_width, 0)
    assume(device is not None)
    restored = loads(dumps(device))
    original = DramPowerModel(device).pattern_power().power
    rebuilt = DramPowerModel(restored).pattern_power().power
    assert rebuilt == pytest.approx(original, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(node_strategy)
def test_wider_devices_never_cheaper_per_access(node):
    narrow = _build(node, 4, 0)
    wide = _build(node, 16, 0)
    assume(narrow is not None and wide is not None)
    narrow_read = DramPowerModel(narrow).operation_energy(Command.RD)
    wide_read = DramPowerModel(wide).operation_energy(Command.RD)
    assert wide_read > narrow_read


@settings(max_examples=30, deadline=None)
@given(node_strategy, width_strategy)
def test_scaling_down_a_node_reduces_energy_per_bit(node, io_width):
    """Any adjacent-node shrink at the same interface-era cannot
    increase the mixed-pattern energy per bit by more than a sliver."""
    node_list = list(nodes())
    index = node_list.index(node)
    assume(index + 1 < len(node_list))
    smaller = node_list[index + 1]
    old = _build(node, io_width, 0)
    new = _build(smaller, io_width, 0)
    assume(old is not None and new is not None)
    from repro.core.idd import idd7_mixed
    old_energy = idd7_mixed(DramPowerModel(old)).energy_per_bit
    new_energy = idd7_mixed(DramPowerModel(new)).energy_per_bit
    assert new_energy < old_energy * 1.05
