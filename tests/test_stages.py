"""Incremental stage-level model construction: keys, reuse, parity."""

import pytest

from repro.core import DramPowerModel
from repro.core.idd import idd7_mixed
from repro.description import Command
from repro.engine import (EvaluationSession, StageCache, Variant,
                          build_model, dirty_stages, stage_keys)
from repro.engine.stages import (FIELD_STAGES, STAGE_INPUTS, STAGE_ORDER,
                                 seed_stage_cache, stage_payload)


def _power(model):
    """Module-level evaluation callable (picklable for the pool)."""
    return idd7_mixed(model).power


def _assert_models_identical(left, right):
    """Bit-for-bit equality across every model output surface."""
    assert left.events == right.events
    assert left.geometry.die_area == right.geometry.die_area
    for command in Command:
        assert (left.operation_breakdown(command).values
                == right.operation_breakdown(command).values)
    assert (left.background_breakdown.values
            == right.background_breakdown.values)
    lp, rp = left.pattern_power(), right.pattern_power()
    assert lp.power == rp.power
    assert lp.current == rp.current
    assert lp.breakdown.values == rp.breakdown.values
    assert dict(lp.operation_power) == dict(rp.operation_power)


class TestStageMap:
    def test_order_matches_inputs(self):
        assert set(STAGE_INPUTS) == set(STAGE_ORDER)

    def test_every_input_is_a_description_field(self, ddr3_device):
        for fields in STAGE_INPUTS.values():
            for name in fields:
                assert hasattr(ddr3_device, name), name

    def test_field_stages_inverts_inputs(self):
        for field, stages in FIELD_STAGES.items():
            for stage in stages:
                assert field in STAGE_INPUTS[stage]


class TestStageKeys:
    def test_equal_devices_equal_keys(self, ddr3_device):
        clone = ddr3_device.scale_path("voltages.vdd", 1.0)
        assert stage_keys(ddr3_device) == stage_keys(clone)

    def test_voltage_change_preserves_upstream_keys(self, ddr3_device):
        base = stage_keys(ddr3_device)
        bumped = stage_keys(ddr3_device.scale_path("voltages.vdd", 1.1))
        assert bumped["geometry"] == base["geometry"]
        assert bumped["capacitance"] == base["capacitance"]
        assert bumped["charge"] != base["charge"]
        assert bumped["current"] != base["current"]
        assert bumped["power"] != base["power"]

    def test_technology_change_preserves_geometry_only(self, ddr3_device):
        base = stage_keys(ddr3_device)
        bumped = stage_keys(
            ddr3_device.scale_path("technology.c_bitline", 1.1))
        assert bumped["geometry"] == base["geometry"]
        for stage in ("capacitance", "charge", "current", "power"):
            assert bumped[stage] != base[stage]

    def test_name_change_dirties_power_only(self, ddr3_device):
        base = stage_keys(ddr3_device)
        renamed = stage_keys(ddr3_device.evolve(name="other"))
        for stage in ("geometry", "capacitance", "charge", "current"):
            assert renamed[stage] == base[stage]
        assert renamed["power"] != base["power"]

    def test_timing_change_preserves_every_key(self, ddr3_device):
        # ``timing`` feeds no construction stage (only trace/IDD
        # evaluation reads it), so timing sweeps reuse everything.
        base = stage_keys(ddr3_device)
        bumped = stage_keys(ddr3_device.scale_path("timing.trc", 1.2))
        assert bumped == base

    def test_floorplan_change_dirties_all(self, ddr3_device):
        base = stage_keys(ddr3_device)
        bumped = stage_keys(
            ddr3_device.scale_path("floorplan.array.bl_pitch", 1.1))
        for stage in STAGE_ORDER:
            assert bumped[stage] != base[stage]


class TestDirtyStages:
    def test_voltage_dirty_suffix(self):
        assert dirty_stages(["voltages"]) == ("charge", "current",
                                              "power")

    def test_unknown_field_dirties_nothing(self):
        assert dirty_stages(["timing"]) == ()
        assert dirty_stages(["interface", "node"]) == ()

    def test_floorplan_dirties_everything(self):
        assert dirty_stages(["floorplan"]) == STAGE_ORDER

    def test_earliest_touched_stage_wins(self):
        assert dirty_stages(["name", "technology"])[0] == "capacitance"

    def test_variant_voltage_delta(self):
        variant = Variant().scaled("voltages.vdd", 1.1)
        assert variant.touched_fields() == ("voltages",)
        assert variant.dirty_stages() == ("charge", "current", "power")

    def test_variant_logic_delta(self):
        variant = Variant().scaled_logic("toggle", 1.2)
        assert variant.touched_fields() == ("logic_blocks",)
        assert variant.dirty_stages()[0] == "capacitance"

    def test_variant_transform_is_conservative(self):
        variant = Variant().transformed(lambda device: device)
        assert "voltages" in variant.touched_fields()
        assert variant.dirty_stages() == STAGE_ORDER


class TestIncrementalParity:
    """Assembled-from-cache models equal cold builds bit-for-bit."""

    @pytest.mark.parametrize("path", [
        "voltages.vdd", "voltages.vpp", "technology.c_bitline",
        "spec.f_ctrlclock", "timing.trc",
    ])
    def test_single_parameter_sweeps(self, ddr3_device, path):
        devices = [ddr3_device.scale_path(path, 1.0 + 0.02 * step)
                   for step in range(5)]
        stages = StageCache()
        build_model(ddr3_device, stages)
        for device in devices:
            _assert_models_identical(build_model(device, stages),
                                     DramPowerModel(device))

    def test_mixed_sweep_shared_cache(self, ddr3_device, ddr5_device):
        stages = StageCache()
        devices = [ddr3_device, ddr5_device,
                   ddr3_device.scale_path("voltages.vdd", 1.05),
                   ddr5_device.scale_path("voltages.vdd", 1.05),
                   ddr3_device]
        for device in devices:
            _assert_models_identical(build_model(device, stages),
                                     DramPowerModel(device))

    def test_rebound_artifacts_track_the_device(self, ddr3_device):
        stages = StageCache()
        build_model(ddr3_device, stages)
        variant = ddr3_device.scale_path("voltages.vdd", 1.1)
        model = build_model(variant, stages)
        assert model.device is variant
        assert model.geometry.device is variant
        assert model.energies.device is variant

    @pytest.mark.parametrize("backend", ["serial", "process", "auto"])
    def test_session_sweep_matches_cold_builds(self, ddr3_device,
                                               backend):
        devices = [ddr3_device.scale_path("voltages.vdd",
                                          1.0 + 0.01 * step)
                   for step in range(6)]
        jobs = 2 if backend == "process" else None
        swept = EvaluationSession().map(devices, _power, jobs=jobs,
                                        backend=backend)
        cold = [_power(DramPowerModel(device)) for device in devices]
        assert swept == cold


class TestStageCounters:
    def test_cold_build_misses_every_stage(self, ddr3_device):
        session = EvaluationSession()
        session.model(ddr3_device)
        stats = session.stats
        assert stats.stage_misses == len(STAGE_ORDER)
        assert stats.stage_hits == 0

    def test_voltage_variant_reuses_two_stages(self, ddr3_device):
        session = EvaluationSession()
        session.model(ddr3_device)
        session.model(ddr3_device.scale_path("voltages.vdd", 1.1))
        stats = session.stats
        assert stats.stage_hits == 2  # geometry + capacitance
        assert stats.stage_misses == 2 * len(STAGE_ORDER) - 2
        assert 0.0 < stats.stage_hit_rate < 1.0

    def test_model_cache_hit_skips_stage_lookups(self, ddr3_device):
        session = EvaluationSession()
        session.model(ddr3_device)
        before = session.stats
        session.model(ddr3_device)
        after = session.stats
        assert after.stage_lookups == before.stage_lookups

    def test_stats_string_reports_stages(self, ddr3_device):
        session = EvaluationSession()
        session.model(ddr3_device)
        text = str(session.stats)
        assert "stages[" in text
        assert "stages[" not in str(EvaluationSession().stats)


class TestStageCacheBounds:
    def test_lru_eviction(self):
        cache = StageCache(capacity=2)
        cache.put("geometry", "a", 1)
        cache.put("geometry", "b", 2)
        cache.put("geometry", "c", 3)
        assert cache.get("geometry", "a") is None
        assert cache.get("geometry", "c") == 3
        assert len(cache) == 2

    def test_put_keeps_first_copy(self):
        cache = StageCache()
        first, second = object(), object()
        cache.put("charge", "k", first)
        cache.put("charge", "k", second)
        assert cache.get("charge", "k") is first


class TestStagePayload:
    def test_roundtrip_seeds_full_reuse(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        payload = stage_payload(ddr3_device, model)
        assert set(payload) == set(STAGE_ORDER)
        stages = StageCache()
        assert seed_stage_cache(stages, payload) == len(STAGE_ORDER)
        rebuilt = build_model(ddr3_device, stages)
        _assert_models_identical(rebuilt, model)
        hits, misses = stages.counters()
        assert hits == len(STAGE_ORDER)
        assert misses == 0

    def test_substituted_events_export_nothing(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        substituted = DramPowerModel(ddr3_device, events=model.events,
                                     geometry=model.geometry)
        assert stage_payload(ddr3_device, substituted) is None
