"""Tests for the Figure 10 / Table III sensitivity analysis."""

import pytest

from repro.analysis import (
    PARAMETERS,
    external_voltage_proportionality,
    sensitivity,
    top_ranking,
)
from repro.devices import sensitivity_trio


@pytest.fixture(scope="module")
def trio_rankings():
    return {device.interface: top_ranking(device)
            for device in sensitivity_trio()}


@pytest.fixture(scope="module")
def ddr3_results(ddr3_device):
    return sensitivity(ddr3_device)


class TestMechanics:
    def test_results_sorted_by_magnitude(self, ddr3_results):
        magnitudes = [result.magnitude for result in ddr3_results]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_all_parameters_evaluated(self, ddr3_results):
        assert len(ddr3_results) == len(PARAMETERS)

    def test_impact_definition(self, ddr3_results):
        result = ddr3_results[0]
        assert result.impact == pytest.approx(
            (result.power_high - result.power_low) / result.power_base
        )

    def test_base_power_consistent(self, ddr3_results):
        bases = {result.power_base for result in ddr3_results}
        assert len(bases) == 1

    def test_variation_bounds_checked(self, ddr3_device):
        with pytest.raises(ValueError):
            sensitivity(ddr3_device, variation=1.5)

    def test_device_not_mutated(self, ddr3_device):
        before = ddr3_device.technology.c_bitline
        sensitivity(ddr3_device, variation=0.1,
                    parameters=PARAMETERS[:3])
        assert ddr3_device.technology.c_bitline == before


class TestDirections:
    """Signs of the impacts must match the physics."""

    def _impact(self, results, name):
        for result in results:
            if result.name == name:
                return result.impact
        raise AssertionError(f"parameter {name!r} missing")

    def test_capacitances_increase_power(self, ddr3_results):
        for name in ("Bitline capacitance", "Cell capacitance",
                     "Specific wire capacitance",
                     "Junction capacitance logic"):
            assert self._impact(ddr3_results, name) > 0, name

    def test_voltages_increase_power(self, ddr3_results):
        for name in ("Internal voltage Vint", "Bitline voltage",
                     "Wordline voltage Vpp"):
            assert self._impact(ddr3_results, name) > 0, name

    def test_thicker_oxide_reduces_power(self, ddr3_results):
        # Thicker oxide → less gate capacitance → less power.
        assert self._impact(ddr3_results, "Gate oxide thickness") < 0

    def test_better_pump_reduces_power(self, ddr3_results):
        assert self._impact(ddr3_results, "Vpp pump efficiency") < 0

    def test_vint_linear_on_its_share(self, ddr3_results):
        # With the supply topology fixed (regulator current ratio), rail
        # energy is linear in the rail level: the ±20 % impact is 0.4 ×
        # the Vint-rail share, necessarily below the Vdd 40 % line.
        impact = self._impact(ddr3_results, "Internal voltage Vint")
        assert 0.15 < impact < 0.40


class TestTableIII:
    def test_vint_ranks_first_everywhere(self, trio_rankings):
        # Table III: internal voltage Vint is #1 for all three devices.
        for interface, ranking in trio_rankings.items():
            assert ranking[0] == "Internal voltage Vint", interface

    def test_bitline_voltage_high_on_sdr(self, trio_rankings):
        # Table III column 1 (128M SDR 170 nm) has bitline voltage at #2;
        # our circuit assumptions place it in the top four, and clearly
        # above the wiring parameters that dominate later generations.
        sdr = trio_rankings["SDR"]
        assert "Bitline voltage" in sdr[:4]
        wire_rank = (sdr.index("Specific wire capacitance")
                     if "Specific wire capacitance" in sdr else 99)
        assert sdr.index("Bitline voltage") < wire_rank

    def test_wire_capacitance_rises_with_generation(self, trio_rankings):
        # The §IV.B shift: wiring importance grows SDR → DDR5.
        sdr_rank = trio_rankings["SDR"].index("Specific wire capacitance") \
            if "Specific wire capacitance" in trio_rankings["SDR"] else 99
        ddr5_rank = trio_rankings["DDR5"].index(
            "Specific wire capacitance")
        assert ddr5_rank < sdr_rank

    def test_array_parameters_fall_with_generation(self):
        # Compare impact *magnitudes*: array-related parameters matter
        # less on the DDR5 forecast than on the SDR part (§IV.B).
        sdr, _, ddr5 = sensitivity_trio()

        def impact(device, name):
            for result in sensitivity(device):
                if result.name == name:
                    return result.magnitude
            raise AssertionError(name)

        for name in ("Bitline capacitance", "Wordline voltage Vpp"):
            assert impact(ddr5, name) < impact(sdr, name), name

    def test_logic_gates_in_top_five_everywhere(self, trio_rankings):
        for interface, ranking in trio_rankings.items():
            assert "Number of logic gates" in ranking[:5], interface

    def test_top_ranking_length(self, ddr3_device):
        assert len(top_ranking(ddr3_device, count=10)) == 10
        assert len(top_ranking(ddr3_device, count=3)) == 3


class TestExternalVoltage:
    def test_power_proportional_to_vdd(self, ddr3_device):
        # §IV.B: only Vdd moves power proportionally (40 % for ±20 %);
        # a +20 % step must land very close to +20 %.
        change = external_voltage_proportionality(ddr3_device, factor=1.2)
        assert change == pytest.approx(0.20, abs=0.04)

    def test_requires_factor_above_one(self, ddr3_device):
        with pytest.raises(ValueError):
            external_voltage_proportionality(ddr3_device, factor=0.8)
