"""Tests for the §VI process options and the breakdown matrix."""

import pytest

from repro import DramPowerModel
from repro.analysis.breakdown import breakdown_matrix, breakdown_report
from repro.core import Component
from repro.core.idd import IddMeasure
from repro.errors import SchemeError
from repro.schemes import (
    FourthMetalLayer,
    LowKDielectric,
    LowVoltageTransistors,
    PROCESS_OPTIONS,
    combined_process_stack,
    process_option_savings,
)


class TestLowK:
    def test_cuts_wire_capacitances(self, ddr3_device):
        option = LowKDielectric(capacitance_factor=0.75)
        modified = option.transform_device(ddr3_device)
        for field in ("c_wire_signal", "c_wire_mwl", "c_wire_swl"):
            assert getattr(modified.technology, field) == pytest.approx(
                0.75 * getattr(ddr3_device.technology, field)
            )

    def test_saves_power(self, ddr3_device):
        result = LowKDielectric().evaluate(ddr3_device)
        assert 0.0 < result.power_saving < 0.25
        assert result.area_overhead == 0.0

    def test_factor_validated(self):
        with pytest.raises(SchemeError):
            LowKDielectric(capacitance_factor=0.0)


class TestLowVoltageTransistors:
    def test_lowers_vint_only(self, ddr3_device):
        modified = LowVoltageTransistors(0.85).transform_device(
            ddr3_device)
        assert modified.voltages.vint == pytest.approx(
            0.85 * ddr3_device.voltages.vint)
        assert modified.voltages.vbl == ddr3_device.voltages.vbl
        assert modified.voltages.vdd == ddr3_device.voltages.vdd

    def test_vint_floored_at_vbl(self, ddr3_device):
        modified = LowVoltageTransistors(0.5).transform_device(
            ddr3_device)
        assert modified.voltages.vint >= modified.voltages.vbl

    def test_saves_on_logic_heavy_device(self, ddr5_device):
        result = LowVoltageTransistors().evaluate(ddr5_device)
        assert result.power_saving > 0.05

    def test_factor_validated(self):
        with pytest.raises(SchemeError):
            LowVoltageTransistors(1.0)


class TestStack:
    def test_every_option_saves(self, ddr3_device):
        savings = process_option_savings(ddr3_device)
        assert set(savings) == {option.name
                                for option in PROCESS_OPTIONS}
        assert all(value > 0 for value in savings.values())

    def test_fourth_metal_is_the_mildest(self, ddr3_device):
        savings = process_option_savings(ddr3_device)
        assert savings["fourth-metal-layer"] == min(savings.values())

    def test_combined_stack_beats_each_alone(self, ddr3_device):
        savings = process_option_savings(ddr3_device)
        combined = combined_process_stack(ddr3_device)
        assert combined > max(savings.values())
        assert combined < sum(savings.values()) * 1.01

    def test_options_matter_more_on_future_nodes(self, ddr3_device,
                                                 ddr5_device):
        # §VI: logic-style power techniques gain importance over time.
        now = combined_process_stack(ddr3_device)
        future = combined_process_stack(ddr5_device)
        assert future > now


class TestBreakdownMatrix:
    def test_matrix_shape(self, ddr3_model):
        matrix = breakdown_matrix(ddr3_model)
        assert IddMeasure.IDD4R in matrix
        assert set(matrix[IddMeasure.IDD4R]) == set(Component)

    def test_standby_has_no_array_power(self, ddr3_model):
        matrix = breakdown_matrix(ddr3_model)
        assert matrix[IddMeasure.IDD2N][Component.BITLINE] == 0.0
        assert matrix[IddMeasure.IDD2N][Component.CONTROL] > 0.0

    def test_idd0_is_array_dominated(self, ddr3_model):
        matrix = breakdown_matrix(ddr3_model)
        row = matrix[IddMeasure.IDD0]
        array = (row[Component.BITLINE] + row[Component.SENSE_AMP]
                 + row[Component.WORDLINE])
        assert array > 0.3 * sum(row.values())

    def test_report_renders(self, ddr3_model):
        text = breakdown_report(ddr3_model)
        assert "bitline" in text
        assert "idd7" in text
        absolute = breakdown_report(ddr3_model, as_share=False)
        assert "mW" in absolute
