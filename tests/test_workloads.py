"""Tests for the workload generators and the open-page scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import DramPowerModel
from repro.core.trace import evaluate_trace
from repro.description import Command
from repro.devices import build_device
from repro.errors import ModelError
from repro.workloads import (
    OpenPageScheduler,
    Request,
    random_trace,
    streaming_trace,
    utilization_trace,
)

DEVICE = build_device(55)
MODEL = DramPowerModel(DEVICE)


class TestScheduler:
    def test_single_request_sequence(self):
        scheduler = OpenPageScheduler(DEVICE)
        scheduler.add(Request(bank=0, row=3))
        trace = scheduler.finalize()
        commands = [entry.command for entry in trace]
        assert commands == [Command.ACT, Command.RD, Command.PRE]

    def test_row_hit_skips_activate(self):
        scheduler = OpenPageScheduler(DEVICE)
        scheduler.extend([Request(0, 3), Request(0, 3), Request(0, 3)])
        trace = scheduler.finalize()
        acts = [e for e in trace if e.command is Command.ACT]
        reads = [e for e in trace if e.command is Command.RD]
        assert len(acts) == 1
        assert len(reads) == 3

    def test_row_conflict_precharges(self):
        scheduler = OpenPageScheduler(DEVICE)
        scheduler.extend([Request(0, 3), Request(0, 4)])
        trace = scheduler.finalize()
        commands = [entry.command for entry in trace]
        assert commands == [Command.ACT, Command.RD, Command.PRE,
                            Command.ACT, Command.RD, Command.PRE]

    def test_write_requests(self):
        scheduler = OpenPageScheduler(DEVICE)
        scheduler.add(Request(0, 1, is_write=True))
        trace = scheduler.finalize()
        assert any(entry.command is Command.WR for entry in trace)

    def test_rejects_bad_bank(self):
        scheduler = OpenPageScheduler(DEVICE)
        with pytest.raises(ModelError):
            scheduler.add(Request(bank=DEVICE.spec.banks, row=0))

    def test_generated_trace_is_strictly_legal(self):
        scheduler = OpenPageScheduler(DEVICE)
        scheduler.extend(Request(bank=index % 8, row=index % 64)
                         for index in range(200))
        trace = scheduler.finalize()
        result = evaluate_trace(MODEL, trace, strict=True)
        assert result.counts[Command.RD] == 200


class TestStreamingTrace:
    def test_high_row_hit_rate(self):
        result = evaluate_trace(MODEL, streaming_trace(DEVICE, 1000))
        assert result.row_hit_rate > 0.9

    def test_near_peak_bandwidth(self):
        result = evaluate_trace(MODEL, streaming_trace(DEVICE, 2000))
        bandwidth = result.data_bits / result.duration
        assert bandwidth > 0.8 * DEVICE.spec.peak_bandwidth

    def test_write_mix(self):
        trace = streaming_trace(DEVICE, 100, read_fraction=0.5)
        writes = sum(1 for e in trace if e.command is Command.WR)
        reads = sum(1 for e in trace if e.command is Command.RD)
        assert writes == pytest.approx(reads, abs=2)

    def test_banks_used_limits_fanout(self):
        trace = streaming_trace(DEVICE, 600, banks_used=2)
        banks = {entry.bank for entry in trace}
        assert banks <= {0, 1}

    def test_rejects_zero_accesses(self):
        with pytest.raises(ModelError):
            streaming_trace(DEVICE, 0)


class TestRandomTrace:
    def test_hit_rate_tracks_target(self):
        for target in (0.2, 0.8):
            result = evaluate_trace(
                MODEL, random_trace(DEVICE, 3000, row_hit_rate=target))
            assert result.row_hit_rate == pytest.approx(target, abs=0.08)

    def test_deterministic_per_seed(self):
        first = random_trace(DEVICE, 200, seed=7)
        second = random_trace(DEVICE, 200, seed=7)
        assert first == second
        different = random_trace(DEVICE, 200, seed=8)
        assert different != first

    def test_energy_per_bit_rises_as_locality_falls(self):
        high = evaluate_trace(
            MODEL, random_trace(DEVICE, 2000, row_hit_rate=0.9))
        low = evaluate_trace(
            MODEL, random_trace(DEVICE, 2000, row_hit_rate=0.1))
        assert low.energy_per_bit > 1.5 * high.energy_per_bit

    def test_rejects_bad_fraction(self):
        with pytest.raises(ModelError):
            random_trace(DEVICE, 10, row_hit_rate=1.5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=400),
           st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=100))
    def test_generated_traces_always_legal(self, accesses, hit_rate,
                                           seed):
        trace = random_trace(DEVICE, accesses, row_hit_rate=hit_rate,
                             seed=seed)
        result = evaluate_trace(MODEL, trace, strict=True)
        assert result.counts[Command.RD] + result.counts[Command.WR] \
            == accesses


class TestUtilizationTrace:
    def test_access_count_scales_with_utilization(self):
        low = utilization_trace(DEVICE, 10e-6, 0.1)
        high = utilization_trace(DEVICE, 10e-6, 0.8)
        def accesses(trace):
            return sum(1 for e in trace
                       if e.command in (Command.RD, Command.WR))
        assert accesses(high) > 4 * accesses(low)

    def test_rejects_zero_utilization(self):
        with pytest.raises(ModelError):
            utilization_trace(DEVICE, 1e-6, 0.0)
