"""Pre-fork tier: routing units, registry, twin servers, live fleet."""

import dataclasses
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.client import ServiceClient
from repro.engine import EvaluationSession, fingerprint
from repro.engine.cache import EngineStats, merge_stats
from repro.service import EvaluationService, create_service
from repro.service.jsonapi import (device_from_payload,
                                   evaluate_payload)
from repro.service.routing import (ROUTED_HEADER, WorkerRegistry,
                                   merge_admission,
                                   merge_request_counts, pid_alive,
                                   preferred_worker,
                                   sum_counter_dicts)


# ----------------------------------------------------------------------
# Rendezvous hashing.
# ----------------------------------------------------------------------
class TestPreferredWorker:
    def test_deterministic(self):
        picks = {preferred_worker("some-key", [0, 1, 2, 3])
                 for _ in range(10)}
        assert len(picks) == 1

    def test_empty_worker_set(self):
        assert preferred_worker("key", []) is None

    def test_spreads_keys(self):
        owners = {preferred_worker(f"key-{i}", [0, 1, 2])
                  for i in range(200)}
        assert owners == {0, 1, 2}

    def test_removal_only_moves_dead_workers_keys(self):
        keys = [f"key-{i}" for i in range(300)]
        before = {key: preferred_worker(key, [0, 1, 2])
                  for key in keys}
        after = {key: preferred_worker(key, [0, 2]) for key in keys}
        for key in keys:
            if before[key] != 1:
                assert after[key] == before[key]
            else:
                assert after[key] in (0, 2)


# ----------------------------------------------------------------------
# Worker registry.
# ----------------------------------------------------------------------
class TestWorkerRegistry:
    def test_write_read_remove(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path), ttl=0.0)
        entry = {"worker": 0, "pid": os.getpid(),
                 "direct_host": "127.0.0.1", "direct_port": 12345}
        registry.write(0, entry)
        assert registry.entries() == {0: entry}
        registry.remove(0)
        registry.remove(0)  # idempotent
        assert registry.entries(refresh=True) == {}

    def test_corrupt_and_foreign_files_skipped(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path), ttl=0.0)
        registry.write(0, {"worker": 0, "pid": os.getpid()})
        (tmp_path / "worker-1.json").write_text("{torn write")
        (tmp_path / "worker-2.json").write_text(
            json.dumps({"pid": os.getpid()}))  # no worker id
        assert sorted(registry.entries()) == [0]

    def test_dead_pid_filtered(self, tmp_path):
        probe = subprocess.Popen(["true"])
        probe.wait()
        assert not pid_alive(probe.pid)
        registry = WorkerRegistry(str(tmp_path), ttl=0.0)
        registry.write(0, {"worker": 0, "pid": os.getpid()})
        registry.write(1, {"worker": 1, "pid": probe.pid})
        assert sorted(registry.entries()) == [0]

    def test_ttl_caches_reads(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path), ttl=60.0)
        registry.write(0, {"worker": 0, "pid": os.getpid()})
        assert sorted(registry.entries()) == [0]
        registry.write(1, {"worker": 1, "pid": os.getpid()})
        assert sorted(registry.entries()) == [0]  # cached view
        assert sorted(registry.entries(refresh=True)) == [0, 1]

    def test_crash_leaked_staging_files_collected(self, tmp_path):
        """A worker SIGKILLed between staging write and rename leaks
        ``worker-<id>.json.tmp<pid>``; registry scans collect it."""
        probe = subprocess.Popen(["true"])
        probe.wait()
        assert not pid_alive(probe.pid)
        registry = WorkerRegistry(str(tmp_path), ttl=0.0)
        registry.write(0, {"worker": 0, "pid": os.getpid()})
        dead_leak = tmp_path / f"worker-3.json.tmp{probe.pid}"
        dead_leak.write_text("{half a reg")
        live_leak = tmp_path / f"worker-4.json.tmp{os.getpid()}"
        live_leak.write_text("{mid-write}")
        odd_old = tmp_path / "worker-5.json.tmpXYZ"
        odd_old.write_text("{}")
        ancient = time.time() - 2 * registry.STALE_STAGING_SECONDS
        os.utime(odd_old, (ancient, ancient))
        odd_new = tmp_path / "worker-6.json.tmpABC"
        odd_new.write_text("{}")
        assert sorted(registry.entries(refresh=True)) == [0]
        assert not dead_leak.exists()  # writer pid dead: collected
        assert live_leak.exists()      # writer alive: in-flight
        assert not odd_old.exists()    # unattributable + old: gone
        assert odd_new.exists()        # unattributable + fresh: kept


# ----------------------------------------------------------------------
# Stats merge helpers.
# ----------------------------------------------------------------------
class TestStatsMerging:
    def test_sum_counter_dicts(self):
        totals = sum_counter_dicts(
            [{"a": 1, "b": 2}, {"a": 3, "b": "bad"}], ("a", "b"))
        assert totals == {"a": 4, "b": 2}

    def test_merge_request_counts(self):
        merged = merge_request_counts(
            [{"/evaluate": 2}, {"/evaluate": 1, "/sweep": 4}])
        assert merged == {"/evaluate": 3, "/sweep": 4}

    def test_merge_admission_drain_flag(self):
        merged = merge_admission(
            [{"capacity": 8, "draining": False},
             {"capacity": 8, "draining": True}])
        assert merged["capacity"] == 16
        assert merged["draining"] is True

    def test_engine_stats_round_trip_and_merge(self):
        left = EngineStats(hits=3, misses=1, evictions=0, size=2,
                           capacity=8, build_seconds=0.5)
        right = EngineStats(hits=1, misses=2, evictions=0, size=3,
                            capacity=8, build_seconds=0.25)
        assert EngineStats.from_dict(
            dataclasses.asdict(left)) == left
        merged = merge_stats(left, right)
        assert merged.hits == 4 and merged.misses == 3
        assert merged.capacity == left.capacity


# ----------------------------------------------------------------------
# Twin servers sharing one warm state.
# ----------------------------------------------------------------------
def test_shared_with_aliases_state():
    primary = create_service(host="127.0.0.1", port=0)
    direct = EvaluationService(("127.0.0.1", 0), affinity=False,
                               shared_with=primary)
    assert direct.session is primary.session
    assert direct.counters is primary.counters
    assert direct.result_cache is primary.result_cache
    threads = [threading.Thread(target=svc.serve_forever,
                                daemon=True)
               for svc in (primary, direct)]
    for thread in threads:
        thread.start()
    try:
        via_direct = ServiceClient(
            f"http://127.0.0.1:{direct.server_port}")
        via_direct.evaluate(device={"node": 44})
        stats = ServiceClient(
            f"http://127.0.0.1:{primary.server_port}").stats()
        # The request entered through the direct port but shows up in
        # the primary's books because the counters are one object.
        assert stats["requests"]["/evaluate"] == 1
        assert stats["engine"]["misses"] >= 1
    finally:
        for svc in (direct, primary):
            svc.shutdown()
            svc.server_close()
        for thread in threads:
            thread.join(timeout=5)
            assert not thread.is_alive()


# ----------------------------------------------------------------------
# Live two-worker fleet (subprocess, real CLI entry point).
# ----------------------------------------------------------------------
def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _fleet_env():
    env = os.environ.copy()
    root = Path(__file__).parent.parent
    env["PYTHONPATH"] = str(root / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    return env


def _child_pids(pid):
    children = Path(f"/proc/{pid}/task/{pid}/children")
    try:
        candidates = [int(part) for part in
                      children.read_text().split()]
    except (OSError, ValueError):
        out = subprocess.run(
            ["ps", "-o", "pid=", "--ppid", str(pid)],
            capture_output=True, text=True)
        candidates = [int(part) for part in out.stdout.split()]
    workers = []
    for child in candidates:
        # The fork-server workers inherit the supervisor's cmdline;
        # the shared-memory resource tracker does not mention repro.
        try:
            cmdline = Path(f"/proc/{child}/cmdline").read_bytes()
        except OSError:
            continue
        if b"repro" in cmdline:
            workers.append(child)
    return workers


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    port = _free_port()
    cache_dir = tmp_path_factory.mktemp("fleet-cache")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--workers", "2",
         "--cache-dir", str(cache_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=_fleet_env())
    client = ServiceClient(f"http://127.0.0.1:{port}")
    if not client.wait_until_ready(timeout=60):
        process.kill()
        out, _ = process.communicate(timeout=10)
        pytest.fail(f"fleet never became ready:\n{out}")
    yield SimpleNamespace(port=port, process=process, client=client)
    process.send_signal(signal.SIGTERM)
    out, _ = process.communicate(timeout=30)
    assert process.returncode == 0, out
    assert "repro service stopped" in out


def _fleet_post(port, path, payload, routed=False, timeout=60):
    """POST once, following at most one affinity redirect manually.

    Returns ``(final_status, body_bytes, worker_id)``.
    """
    headers = {"Content-Type": "application/json"}
    if routed:
        headers[ROUTED_HEADER] = "1"
    blob = json.dumps(payload)
    conn = http.client.HTTPConnection("127.0.0.1", port,
                                      timeout=timeout)
    try:
        conn.request("POST", path, body=blob, headers=headers)
        response = conn.getresponse()
        body = response.read()
        if response.status in (307, 308) and not routed:
            location = response.getheader("Location")
            parts = location.split("/")[2]  # host:port
            host, _, target_port = parts.partition(":")
            hop = http.client.HTTPConnection(
                host, int(target_port), timeout=timeout)
            try:
                hop.request("POST", path, body=blob,
                            headers={**headers, ROUTED_HEADER: "1"})
                response = hop.getresponse()
                body = response.read()
                return (response.status, body,
                        response.getheader("X-Repro-Worker"))
            finally:
                hop.close()
        return (response.status, body,
                response.getheader("X-Repro-Worker"))
    finally:
        conn.close()


class TestFleet:
    def test_fleet_matches_single_process_bit_for_bit(self, fleet):
        payloads = [{"device": {}},
                    {"devices": [{"node": 44}, {"node": 55}]}]
        session = EvaluationSession(capacity=16)
        for payload in payloads:
            replies = [_fleet_post(fleet.port, "/evaluate", payload)
                       for _ in range(3)]
            assert all(status == 200 for status, _, _ in replies)
            bodies = {body for _, body, _ in replies}
            assert len(bodies) == 1, \
                "repeat responses were not byte-identical"
            expected = evaluate_payload(session, payload)
            assert json.loads(bodies.pop()) == expected

    def test_affinity_pins_device_to_one_worker(self, fleet):
        payload = {"device": {"node": 44}}
        outcomes = [_fleet_post(fleet.port, "/evaluate", payload)
                    for _ in range(6)]
        workers = {worker for status, _, worker in outcomes
                   if status == 200}
        assert len(workers) == 1, \
            f"device bounced between workers: {workers}"
        # A request that already followed a hop is served in place.
        status, _, _ = _fleet_post(fleet.port, "/evaluate", payload,
                                   routed=True)
        assert status == 200
        # Sanity: the fingerprint the router uses is process-stable.
        key = fingerprint(device_from_payload({"node": 44}))
        assert preferred_worker(key, [0, 1]) is not None

    def test_cluster_stats_aggregate_both_workers(self, fleet):
        fleet.client.evaluate(device={})
        stats = fleet.client.request("GET", "/stats?scope=cluster")
        assert stats["scope"] == "cluster"
        assert stats["workers"] == [0, 1]
        assert stats["workers_unreachable"] == []
        assert stats["admission"]["capacity"] == 16  # 2 x 8 slots
        assert stats["requests_total"] >= 1
        assert stats["requests"].get("/evaluate", 0) >= 1
        # Both workers preseeded their stage cache from shared memory.
        assert stats["engine"]["shm_loads"] == 2

    def test_killed_worker_is_respawned(self, fleet):
        workers = _child_pids(fleet.process.pid)
        assert len(workers) == 2
        victim = workers[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        respawned = False
        while time.monotonic() < deadline:
            # The fleet must stay available throughout; transient
            # refusals on the dying worker's accept queue are the
            # client's stale-connection problem, not an outage.
            try:
                assert fleet.client.healthz()["status"] == "ok"
            except Exception:
                pass
            current = _child_pids(fleet.process.pid)
            if len(current) == 2 and victim not in current:
                respawned = True
                break
            time.sleep(0.1)
        assert respawned, "supervisor never replaced the dead worker"
        stats_deadline = time.monotonic() + 30
        while time.monotonic() < stats_deadline:
            stats = fleet.client.request(
                "GET", "/stats?scope=cluster")
            if stats["workers"] == [0, 1]:
                break
            time.sleep(0.2)
        assert stats["workers"] == [0, 1]
        assert fleet.client.evaluate(
            device={})["results"][0]["power_w"] > 0

    def test_durable_job_runs_across_the_fleet(self, fleet):
        """Jobs are on by default with --cache-dir; any worker can
        answer for a job another worker is running, because the
        journal and status live in the shared store."""
        handle = fleet.client.submit_job(
            "montecarlo", params={"samples": 6, "seed": 5},
            chunk_size=2, idempotency_key="fleet-mc")
        again = fleet.client.submit_job(
            "montecarlo", params={"samples": 6, "seed": 5},
            chunk_size=2, idempotency_key="fleet-mc")
        assert again.id == handle.id
        assert again.submitted["created"] is False
        result = handle.result(interval=0.1, timeout=60.0)
        assert result["samples"] == 6
        assert len(result["rows"]) == 2
        final = handle.status()
        assert final["state"] == "done"
        assert final["chunks_done"] == 3
