"""Tests for the generation roadmap (Figures 11/12 inputs)."""

import pytest

from repro.errors import TechnologyError
from repro.technology import nodes, roadmap_entry
from repro.technology.roadmap import COMPLEXITY, PREFETCH, ROADMAP


class TestRoadmapShape:
    def test_covers_170_to_16(self):
        node_list = nodes()
        assert node_list[0] == 170
        assert node_list[-1] == 16
        assert len(node_list) == 14

    def test_nodes_strictly_decreasing(self):
        node_list = nodes()
        assert all(a > b for a, b in zip(node_list, node_list[1:]))

    def test_average_shrink_near_16_percent(self):
        # Paper §III.C: "The average feature size shrink between
        # generations is 16%".
        node_list = nodes()
        ratio = (node_list[-1] / node_list[0]) ** (1 / (len(node_list) - 1))
        assert 0.80 < ratio < 0.88

    def test_years_increase(self):
        years = [roadmap_entry(node).year for node in nodes()]
        assert all(a <= b for a, b in zip(years, years[1:]))

    def test_unknown_node_rejected(self):
        with pytest.raises(TechnologyError):
            roadmap_entry(100)


class TestVoltageTrends:
    def test_vdd_monotone_non_increasing(self):
        vdd = [roadmap_entry(node).vdd for node in nodes()]
        assert all(a >= b for a, b in zip(vdd, vdd[1:]))

    def test_voltage_scaling_slows_down(self):
        # Figure 11/13 headline: the early generations drop voltage much
        # faster than the forecast ones.
        early_drop = ROADMAP[170].vdd / ROADMAP[55].vdd
        late_drop = ROADMAP[44].vdd / ROADMAP[16].vdd
        assert early_drop > late_drop

    def test_rail_orderings_every_node(self):
        for node in nodes():
            entry = roadmap_entry(node)
            assert entry.vpp > entry.vdd >= entry.vint >= entry.vbl, node

    def test_efficiencies_valid(self):
        for node in nodes():
            entry = roadmap_entry(node)
            assert 0 < entry.eff_vint <= 1
            assert 0 < entry.eff_vbl <= 1
            assert 0 < entry.eff_vpp <= 1


class TestInterfaceAssumptions:
    def test_prefetch_doubles_per_family(self):
        assert PREFETCH == {"SDR": 1, "DDR": 2, "DDR2": 4, "DDR3": 8,
                            "DDR4": 16, "DDR5": 32}

    def test_complexity_grows_with_family(self):
        order = ["SDR", "DDR", "DDR2", "DDR3", "DDR4", "DDR5"]
        values = [COMPLEXITY[name] for name in order]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_datarate_monotone_non_decreasing(self):
        rates = [roadmap_entry(node).datarate for node in nodes()]
        assert all(a <= b for a, b in zip(rates, rates[1:]))

    def test_core_frequency_capped(self):
        # Paper §IV.C: "the maximum core frequency does not increase" —
        # the prefetch absorbs the data-rate doubling.
        for node in nodes():
            entry = roadmap_entry(node)
            assert entry.core_frequency <= 235e6, node

    def test_sdr_control_clock_equals_datarate(self):
        entry = ROADMAP[170]
        assert entry.f_ctrlclock == entry.datarate

    def test_ddr_control_clock_is_half_rate(self):
        entry = ROADMAP[55]
        assert entry.f_ctrlclock == pytest.approx(entry.datarate / 2)


class TestTimings:
    def test_trc_shrinks_slowly(self):
        # Row timings improve far slower than bandwidth (Figure 12).
        assert ROADMAP[170].trc / ROADMAP[16].trc < 2.0
        trcs = [roadmap_entry(node).trc for node in nodes()]
        assert all(a >= b for a, b in zip(trcs, trcs[1:]))

    def test_bank_counts(self):
        assert ROADMAP[170].banks == 4
        assert ROADMAP[55].banks == 8
        assert ROADMAP[31].banks == 16
        assert ROADMAP[18].banks == 32

    def test_density_never_decreases(self):
        densities = [roadmap_entry(node).density_bits for node in nodes()]
        assert all(a <= b for a, b in zip(densities, densities[1:]))
