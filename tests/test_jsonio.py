"""Tests for the JSON interchange format."""

import json

import pytest

from repro import DramPowerModel
from repro.description.jsonio import (
    SCHEMA_VERSION,
    dumps_json,
    from_dict,
    loads_json,
    to_dict,
)
from repro.errors import DescriptionError


class TestRoundTrip:
    def test_exact_field_round_trip(self, ddr3_device):
        restored = loads_json(dumps_json(ddr3_device))
        assert restored.technology == ddr3_device.technology
        assert restored.voltages == ddr3_device.voltages
        assert restored.spec == ddr3_device.spec
        assert restored.timing == ddr3_device.timing
        assert restored.logic_blocks == ddr3_device.logic_blocks
        assert restored.pattern == ddr3_device.pattern
        assert restored.floorplan.array == ddr3_device.floorplan.array

    def test_power_identical(self, all_devices):
        for device in all_devices:
            restored = loads_json(dumps_json(device))
            original = DramPowerModel(device).pattern_power().power
            rebuilt = DramPowerModel(restored).pattern_power().power
            assert rebuilt == pytest.approx(original, rel=0.0), \
                device.name

    def test_mobile_device_round_trips(self):
        from repro.devices import build_mobile_device
        device = build_mobile_device(55)
        restored = loads_json(dumps_json(device))
        assert {net.name for net in restored.signaling} == \
            {net.name for net in device.signaling}


class TestSchema:
    def test_valid_json(self, ddr3_device):
        data = json.loads(dumps_json(ddr3_device))
        assert data["schema_version"] == SCHEMA_VERSION
        assert len(data["technology"]) == 39

    def test_unknown_version_rejected(self, ddr3_device):
        data = to_dict(ddr3_device)
        data["schema_version"] = 99
        with pytest.raises(DescriptionError):
            from_dict(data)

    def test_operations_serialised_as_strings(self, ddr3_device):
        data = to_dict(ddr3_device)
        write_net = [net for net in data["signaling"]
                     if net["name"] == "DataWriteCore"][0]
        assert write_net["operations"] == ["wr"]

    def test_dsl_and_json_agree(self, ddr3_device):
        from repro.dsl import dumps, loads
        via_json = loads_json(dumps_json(ddr3_device))
        via_dsl = loads(dumps(ddr3_device))
        json_power = DramPowerModel(via_json).pattern_power().power
        dsl_power = DramPowerModel(via_dsl).pattern_power().power
        assert json_power == pytest.approx(dsl_power, rel=1e-6)
