"""The shipped example description files must stay loadable and sane."""

from pathlib import Path

import pytest

from repro import DramPowerModel
from repro.dsl import load

DESCRIPTIONS = sorted(
    (Path(__file__).parent.parent / "examples" / "descriptions")
    .glob("*.dram")
)


def test_example_descriptions_exist():
    assert len(DESCRIPTIONS) >= 2


@pytest.mark.parametrize("path", DESCRIPTIONS,
                         ids=[p.name for p in DESCRIPTIONS])
def test_description_loads_and_models(path):
    device = load(path)
    model = DramPowerModel(device)
    result = model.pattern_power()
    assert result.power > 0
    assert result.energy_per_bit_pj < 1000


def test_ddr3_description_matches_catalog():
    from repro.devices import ddr3_2g_55nm
    path = [p for p in DESCRIPTIONS if "ddr3" in p.name][0]
    loaded = DramPowerModel(load(path)).pattern_power().power
    built = DramPowerModel(ddr3_2g_55nm()).pattern_power().power
    assert loaded == pytest.approx(built, rel=1e-6)
