"""Tests for the FR-FCFS reordering scheduler front-end."""

import random

import pytest

from repro.core.trace import evaluate_trace
from repro.description import Command
from repro.errors import ModelError
from repro.workloads import OpenPageScheduler, Request, schedule_frfcfs


def hot_row_stream(device, count, rows=16, seed=4):
    """Random accesses over a small hot row pool per bank."""
    rng = random.Random(seed)
    return [Request(bank=rng.randrange(device.spec.banks),
                    row=rng.randrange(rows))
            for _ in range(count)]


class TestFrFcfs:
    def test_trace_is_legal(self, ddr3_device, ddr3_model):
        trace = schedule_frfcfs(ddr3_device,
                                hot_row_stream(ddr3_device, 300))
        result = evaluate_trace(ddr3_model, trace, strict=True)
        total = result.counts[Command.RD] + result.counts[Command.WR]
        assert total == 300

    def test_improves_hit_rate_over_fcfs(self, ddr3_device, ddr3_model):
        requests = hot_row_stream(ddr3_device, 600)
        reordered = evaluate_trace(
            ddr3_model,
            schedule_frfcfs(ddr3_device, requests, window=16))
        scheduler = OpenPageScheduler(ddr3_device)
        scheduler.extend(requests)
        in_order = evaluate_trace(ddr3_model, scheduler.finalize())
        assert reordered.row_hit_rate > in_order.row_hit_rate
        assert reordered.energy_per_bit < in_order.energy_per_bit

    def test_all_requests_served_exactly_once(self, ddr3_device):
        requests = [Request(bank=0, row=index % 4)
                    for index in range(40)]
        trace = schedule_frfcfs(ddr3_device, requests, window=4)
        reads = [entry for entry in trace
                 if entry.command is Command.RD]
        assert len(reads) == 40

    def test_window_one_degenerates_to_fcfs(self, ddr3_device):
        requests = hot_row_stream(ddr3_device, 100)
        fifo = OpenPageScheduler(ddr3_device)
        fifo.extend(requests)
        assert schedule_frfcfs(ddr3_device, requests, window=1) \
            == fifo.finalize()

    def test_bigger_window_helps_or_ties(self, ddr3_device, ddr3_model):
        requests = hot_row_stream(ddr3_device, 400, seed=7)
        small = evaluate_trace(
            ddr3_model, schedule_frfcfs(ddr3_device, requests, window=2))
        large = evaluate_trace(
            ddr3_model, schedule_frfcfs(ddr3_device, requests,
                                        window=32))
        assert large.row_hit_rate >= small.row_hit_rate - 0.02

    def test_window_validated(self, ddr3_device):
        with pytest.raises(ModelError):
            schedule_frfcfs(ddr3_device, [Request(0, 0)], window=0)

    def test_closed_policy_combination(self, ddr3_device, ddr3_model):
        # FR-FCFS over a closed-page scheduler never finds open rows,
        # but must still be legal and complete.
        trace = schedule_frfcfs(ddr3_device,
                                hot_row_stream(ddr3_device, 100),
                                policy="closed")
        result = evaluate_trace(ddr3_model, trace, strict=True)
        assert result.row_hit_rate == 0.0
