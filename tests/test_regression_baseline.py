"""The checked-in regression baseline must match the current model."""

import math
from pathlib import Path

import pytest

from repro.analysis.regression import (
    collect_metrics,
    compare_to_baseline,
    save_baseline,
)
from repro.errors import ModelError

BASELINE = Path(__file__).parent.parent / "benchmarks" \
    / "baseline_metrics.json"


class TestBaselineFile:
    def test_baseline_checked_in(self):
        assert BASELINE.exists()

    def test_current_model_matches_baseline(self):
        deviations = compare_to_baseline(BASELINE)
        assert deviations == [], (
            "model metrics drifted from benchmarks/"
            "baseline_metrics.json — if the change is deliberate, "
            "regenerate the baseline via "
            "repro.analysis.regression.save_baseline and update "
            "EXPERIMENTS.md: " + repr(deviations)
        )


class TestMechanics:
    def test_metrics_cover_the_headlines(self):
        metrics = collect_metrics()
        assert "ddr3_55nm.idd0_ma" in metrics
        assert "trend.reduction_early" in metrics
        assert "verify.ddr3_hits" in metrics
        assert metrics["verify.ddr2_hits"] == 36.0
        assert metrics["verify.ddr3_hits"] == 36.0

    def test_save_and_compare_round_trip(self, tmp_path):
        path = save_baseline(tmp_path / "baseline.json")
        assert compare_to_baseline(path) == []

    def test_deviation_detected(self, tmp_path):
        import json
        path = save_baseline(tmp_path / "baseline.json")
        data = json.loads(path.read_text())
        data["ddr3_55nm.idd0_ma"] *= 1.5
        path.write_text(json.dumps(data))
        deviations = compare_to_baseline(path)
        assert len(deviations) == 1
        assert deviations[0][0] == "ddr3_55nm.idd0_ma"

    def test_missing_metric_reported(self, tmp_path):
        import json
        path = save_baseline(tmp_path / "baseline.json")
        data = json.loads(path.read_text())
        data["ghost.metric"] = 1.0
        path.write_text(json.dumps(data))
        deviations = compare_to_baseline(path)
        assert any(name == "ghost.metric" and math.isnan(value)
                   for name, _, value in deviations)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            compare_to_baseline(tmp_path / "absent.json")
