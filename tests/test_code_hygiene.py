"""Source-tree hygiene checks.

Cheap static guards that keep the library tidy without external linters:
no unused imports outside ``__init__`` re-export modules, no tab
characters, every public module carries a docstring.
"""

import ast
from pathlib import Path

SRC = Path(__file__).parent.parent / "src" / "repro"


def _module_paths():
    return sorted(SRC.rglob("*.py"))


def _imported_names(tree):
    names = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                key = (alias.asname or alias.name).split(".")[0]
                names[key] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names[alias.asname or alias.name] = node.lineno
    return names


def test_no_unused_imports():
    offenders = []
    for path in _module_paths():
        if path.name == "__init__.py":
            continue  # re-export modules use imports as their API
        source = path.read_text()
        tree = ast.parse(source)
        for name, line in _imported_names(tree).items():
            if name == "annotations":
                continue  # from __future__ import annotations
            if source.count(name) <= 1:
                offenders.append(f"{path.relative_to(SRC)}:{line}: "
                                 f"{name}")
    assert offenders == []


def test_no_tabs():
    offenders = [str(path.relative_to(SRC))
                 for path in _module_paths()
                 if "\t" in path.read_text()]
    assert offenders == []


def test_every_module_has_a_docstring():
    offenders = []
    for path in _module_paths():
        tree = ast.parse(path.read_text())
        if not ast.get_docstring(tree):
            offenders.append(str(path.relative_to(SRC)))
    assert offenders == []


def test_no_print_in_library_code():
    # The CLI is the only module allowed to print.
    offenders = []
    for path in _module_paths():
        if path.name in ("cli.py",):
            continue
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                offenders.append(f"{path.relative_to(SRC)}:{node.lineno}")
    assert offenders == []


def test_line_length_soft_limit():
    # PEP 8's 79 with a small grace for tables/URLs.
    offenders = []
    for path in _module_paths():
        for number, line in enumerate(path.read_text().splitlines(), 1):
            if len(line) > 85:
                offenders.append(f"{path.relative_to(SRC)}:{number}")
    assert offenders == []
