"""Tests for the ASCII chart helpers and the full report generator."""

import pytest

from repro.analysis.charts import (
    bar_chart,
    line_chart,
    normalize_series,
    sparkline,
)


class TestBarChart:
    def test_renders_all_labels(self):
        chart = bar_chart(["alpha", "beta"], [1.0, 2.0])
        assert "alpha" in chart
        assert "beta" in chart

    def test_longest_bar_for_largest_value(self):
        chart = bar_chart(["a", "b"], [1.0, 4.0], width=8)
        lines = chart.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_negative_values_marked(self):
        chart = bar_chart(["down"], [-3.0], unit="%")
        assert "-3" in chart

    def test_title(self):
        chart = bar_chart(["a"], [1.0], title="Impact")
        assert chart.splitlines()[0] == "Impact"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestLineChart:
    def test_renders_grid(self):
        chart = line_chart([1, 2, 3, 4], [10, 20, 15, 40], height=6,
                           width=20)
        assert chart.count("*") >= 3
        assert "+" in chart

    def test_log_axis(self):
        chart = line_chart([170, 55, 16], [350, 18, 3.6], log_y=True)
        assert "350" in chart
        assert "3.6" in chart

    def test_log_axis_rejects_non_positive(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], [0.0, 1.0], log_y=True)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            line_chart([1], [1])


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes(self):
        line = sparkline([0, 10])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestNormalize:
    def test_peak_is_one(self):
        series = normalize_series([2.0, 4.0, 1.0])
        assert max(series) == 1.0
        assert series == (0.5, 1.0, 0.25)


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.analysis.report import generate_report
        return generate_report()

    def test_contains_every_experiment(self, report):
        for marker in ("Figure 8", "Figure 9", "Figure 10",
                       "Table III", "Figure 13", "Section IV.B",
                       "Section V"):
            assert marker in report, marker

    def test_headline_figures_present(self, report):
        assert "reduction per generation" in report
        assert "selective-bitline-activation" in report
        assert "Internal voltage Vint" in report

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "report.txt"
        code = main(["report", "-o", str(path)])
        assert code == 0
        assert path.exists()
        assert "Figure 13" in path.read_text()
