"""Tests for technology scaling (Figures 5-7) and disruptions (Table II)."""

import pytest

from repro.errors import TechnologyError
from repro.technology import (
    BASELINE_55NM,
    SCALING_LAWS,
    auxiliary_for_node,
    cell_architecture_for_node,
    cells_per_line_for_node,
    changes_between,
    feature_shrink,
    shrink_factor,
    technology_for_node,
)
from repro.technology.disruptions import DISRUPTIVE_CHANGES
from repro.technology.roadmap import nodes


class TestScalingLaws:
    def test_baseline_identity(self):
        tech = technology_for_node(55)
        assert tech == BASELINE_55NM

    def test_every_parameter_has_a_law(self):
        for name, _ in BASELINE_55NM.items():
            assert name in SCALING_LAWS, name

    def test_parameters_shrink_slower_than_feature(self):
        # Paper §III.C: "In general technology parameters shrink more
        # slowly than the feature size".
        f = feature_shrink(16, 170)
        slower = 0
        total = 0
        for name, law in SCALING_LAWS.items():
            if law.exponent == 0.0:
                continue
            total += 1
            # w_cell tracks the feature size exactly (exponent 1); all
            # others shrink strictly slower.
            if law.factor(16, 170) >= f * 0.999:
                slower += 1
        assert slower == total

    def test_shrink_factor_at_reference_is_one(self):
        assert shrink_factor("c_bitline", 170) == pytest.approx(1.0)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TechnologyError):
            shrink_factor("flux_capacitor", 55)

    def test_figures_partition(self):
        figures = {law.figure for law in SCALING_LAWS.values()}
        assert figures == {"fig5", "fig6", "fig7"}

    def test_monotone_shrink(self):
        for name in ("lmin_logic", "w_sa_n", "c_wire_signal"):
            values = [shrink_factor(name, node) for node in nodes()]
            assert all(a >= b for a, b in zip(values, values[1:])), name


class TestDisruptiveSteps:
    def test_dual_gate_oxide_step(self):
        # Above 110 nm the logic oxide is 1.3× thicker than the smooth
        # law (single thick oxide before the 110→90 transition).
        smooth = (140 / 55) ** 0.5
        assert shrink_factor("tox_logic", 140, 55) == pytest.approx(
            smooth * 1.3
        )

    def test_cu_metallization_step(self):
        # c_wire_signal drops by the Cu factor crossing 55 → 44 nm.
        before = technology_for_node(55).c_wire_signal
        after = technology_for_node(44).c_wire_signal
        smooth = (44 / 55) ** 0.2
        assert after / before == pytest.approx(smooth * 0.85)

    def test_high_k_step(self):
        before = shrink_factor("tox_logic", 36, 55)
        after = shrink_factor("tox_logic", 31, 55)
        smooth = (31 / 36) ** 0.5
        assert after / before == pytest.approx(smooth * 0.9)


class TestTechnologyForNode:
    @pytest.mark.parametrize("node", [170, 110, 90, 75, 65, 55, 44, 36,
                                      25, 18, 16])
    def test_valid_at_every_node(self, node):
        tech = technology_for_node(node)
        assert tech.parameter_count == 39
        assert tech.c_bitline > 0

    def test_cell_cap_nearly_constant(self):
        # The cell capacitance is held nearly constant across generations
        # (refresh-time requirement, paper §III.C).
        old = technology_for_node(170).c_cell
        new = technology_for_node(16).c_cell
        assert 0.6 < new / old < 1.0

    def test_bits_per_csl_stays_integer(self):
        assert isinstance(technology_for_node(31).bits_per_csl, int)

    def test_auxiliary_quantities(self):
        aux = auxiliary_for_node(55)
        assert aux["width_sa_stripe"] == pytest.approx(20e-6)
        older = auxiliary_for_node(170)
        assert older["width_sa_stripe"] > aux["width_sa_stripe"]


class TestTableTwo:
    def test_nine_rows(self):
        assert len(DISRUPTIVE_CHANGES) == 9

    def test_cell_architecture_staircase(self):
        assert cell_architecture_for_node(75)[0] == "folded"
        assert cell_architecture_for_node(65)[0] == "open"
        assert cell_architecture_for_node(44)[0] == "open"
        # 6F² (3F wordline pitch) down to 40 nm, 4F² (2F) below.
        assert cell_architecture_for_node(55)[1] == 3.0
        assert cell_architecture_for_node(36)[1] == 2.0

    def test_cell_areas(self):
        for node, expected_f2 in ((90, 8.0), (55, 6.0), (31, 4.0)):
            arch, wl_f, bl_f = cell_architecture_for_node(node)
            factor = 2.0 if arch == "folded" else 1.0
            assert wl_f * bl_f * factor == expected_f2, node

    def test_cells_per_line_steps(self):
        assert cells_per_line_for_node(110) == 256
        assert cells_per_line_for_node(90) == 512
        assert cells_per_line_for_node(55) == 512
        assert cells_per_line_for_node(36) == 1024

    def test_changes_between_75_and_65(self):
        crossed = changes_between(75, 65)
        assert any("folded bitline" in change.change
                   for change in crossed)

    def test_changes_between_full_roadmap(self):
        crossed = changes_between(170, 16)
        # Everything within the roadmap span is crossed.
        assert len(crossed) >= 8

    def test_no_changes_within_one_node(self):
        assert changes_between(55, 55) == ()
