"""Tests for power-down states and system-side power management."""

import pytest

from repro.core.idd import (
    IddMeasure,
    idd2n,
    idd2p,
    idd3p,
    idd6,
    standard_idd_suite,
)
from repro.errors import SchemeError
from repro.schemes import (
    RefreshPolicy,
    adaptive_refresh_savings,
    power_down_savings,
    power_down_scheduling,
    power_state_table,
    refresh_power,
)


class TestPowerDownStates:
    def test_state_ordering(self, ddr3_model):
        # IDD6 ≤ IDD2P < IDD3P < IDD2N: deeper states draw less.
        suite = standard_idd_suite(ddr3_model)
        assert suite[IddMeasure.IDD6].current <= \
            suite[IddMeasure.IDD2P].current * 1.05
        assert suite[IddMeasure.IDD2P].current \
            < suite[IddMeasure.IDD3P].current
        assert suite[IddMeasure.IDD3P].current \
            < suite[IddMeasure.IDD2N].current

    def test_constant_current_floor(self, ddr3_model):
        # Even the deepest state keeps the reference/regulator current.
        floor = (ddr3_model.device.constant_current * 1e3)
        assert idd2p(ddr3_model).milliamps > floor

    def test_idd6_includes_refresh(self, ddr3_model):
        gated = idd2p(ddr3_model)
        self_refresh = idd6(ddr3_model)
        refresh_part = self_refresh.power.operation_power["refresh"]
        assert refresh_part > 0
        # Self-refresh standby is below power-down standby (deeper
        # gating), refresh work partially offsets it.
        assert self_refresh.power.operation_power["background"] \
            < gated.power.power

    def test_plausible_magnitudes(self, ddr3_model):
        # DDR3-era power-down currents are around 10-20 mA.
        assert 3 < idd2p(ddr3_model).milliamps < 30
        assert 3 < idd6(ddr3_model).milliamps < 30

    def test_breakdown_total_matches(self, ddr3_model):
        result = idd3p(ddr3_model)
        assert result.power.breakdown.total == pytest.approx(
            result.power.power
        )


class TestPowerDownScheduling:
    def test_idle_system_saves_most(self, ddr3_model):
        low = power_down_savings(ddr3_model, utilization=0.05)
        high = power_down_savings(ddr3_model, utilization=0.9)
        assert low > 0.25
        assert high < 0.1
        assert low > high

    def test_duty_cycle_math(self, ddr3_model):
        result = power_down_scheduling(ddr3_model, utilization=0.5,
                                       idle_in_power_down=1.0)
        expected = 0.5 * result.active_power \
            + 0.5 * result.power_down_power
        assert result.average_power == pytest.approx(expected)

    def test_transition_overhead_reduces_saving(self, ddr3_model):
        cheap = power_down_scheduling(ddr3_model, 0.2, 0.9, 0.0)
        costly = power_down_scheduling(ddr3_model, 0.2, 0.9, 1e6)
        assert costly.average_power > cheap.average_power

    def test_validation(self, ddr3_model):
        with pytest.raises(SchemeError):
            power_down_scheduling(ddr3_model, utilization=1.5)
        with pytest.raises(SchemeError):
            power_down_scheduling(ddr3_model, 0.5, idle_in_power_down=-1)


class TestAdaptiveRefresh:
    def test_reduced_rate_saves(self, ddr3_model):
        saving = adaptive_refresh_savings(ddr3_model, rate_factor=0.25)
        assert 0.0 < saving < 1.0

    def test_self_refresh_mode_saves_more_fractionally(self, ddr3_model):
        # Refresh is a bigger share of the self-refresh state than of
        # clocked standby, so the fractional saving is larger there.
        in_self_refresh = adaptive_refresh_savings(ddr3_model, 0.25,
                                                   self_refresh=True)
        in_standby = adaptive_refresh_savings(ddr3_model, 0.25,
                                              self_refresh=False)
        assert in_self_refresh > in_standby

    def test_nominal_policy_is_neutral(self, ddr3_model):
        assert adaptive_refresh_savings(ddr3_model, 1.0) == \
            pytest.approx(0.0)

    def test_refresh_power_monotone_in_rate(self, ddr3_model):
        low = refresh_power(ddr3_model, RefreshPolicy("low", 0.5))
        high = refresh_power(ddr3_model, RefreshPolicy("high", 2.0))
        assert high > low

    def test_policy_validation(self):
        with pytest.raises(SchemeError):
            RefreshPolicy("bad", -0.5)


class TestTemperatureRefresh:
    def test_nominal_at_85c(self):
        from repro.schemes import refresh_rate_for_temperature
        assert refresh_rate_for_temperature(85.0) == pytest.approx(1.0)

    def test_halving_per_ten_kelvin(self):
        from repro.schemes import refresh_rate_for_temperature
        assert refresh_rate_for_temperature(75.0) == pytest.approx(0.5)
        assert refresh_rate_for_temperature(95.0) == pytest.approx(2.0)

    def test_clamped_below(self):
        from repro.schemes import refresh_rate_for_temperature
        assert refresh_rate_for_temperature(0.0) == 0.125

    def test_power_monotone_in_temperature(self, ddr3_model):
        from repro.schemes import temperature_refresh_power
        powers = [temperature_refresh_power(ddr3_model, t)
                  for t in (45, 65, 85, 95)]
        assert all(a <= b for a, b in zip(powers, powers[1:]))


class TestStateTable:
    def test_all_states_reported(self, ddr3_model):
        table = power_state_table(ddr3_model)
        assert len(table) == 4
        assert all(value > 0 for value in table.values())
        assert table["power-down (IDD2P)"] < table["standby (IDD2N)"]
