"""Shared-memory stage store: transport, seeding, cleanup, fallback."""

import functools
import os

import pytest

from repro.core import DramPowerModel
from repro.core.idd import idd7_mixed
from repro.engine import EvaluationSession, SharedStageStore, shm_available
from repro.engine.shm import publish_stage_payload
from repro.engine.stages import STAGE_ORDER, stage_payload
from repro.service.faults import power_kill_always, power_kill_once

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="platform lacks shared memory")

#: Where Linux exposes POSIX shared-memory segments as files.
SHM_DIR = "/dev/shm"


def _power(model):
    """Module-level evaluation callable (picklable for the pool)."""
    return idd7_mixed(model).power


def _variants(device, count=6):
    return [device.scale_path("voltages.vdd", 1.0 + 0.005 * step)
            for step in range(count)]


def _shm_entries():
    """Current shared-memory segment names (empty off Linux)."""
    try:
        return set(os.listdir(SHM_DIR))
    except OSError:  # pragma: no cover - non-Linux
        return set()


class TestStoreRoundtrip:
    def test_payload_survives_the_segment(self, ddr3_device):
        payload = stage_payload(ddr3_device, DramPowerModel(ddr3_device))
        store = SharedStageStore.create(payload)
        try:
            loaded = SharedStageStore.load(store.name)
        finally:
            store.destroy()
        assert set(loaded) == set(STAGE_ORDER)
        for stage in ("capacitance", "charge"):
            key, artifact = loaded[stage]
            assert key == payload[stage][0]
            assert artifact == payload[stage][1]

    def test_destroy_removes_the_segment(self, ddr3_device):
        payload = stage_payload(ddr3_device, DramPowerModel(ddr3_device))
        before = _shm_entries()
        store = SharedStageStore.create(payload)
        created = _shm_entries() - before
        store.destroy()
        assert not (_shm_entries() & created)

    def test_destroy_is_idempotent(self, ddr3_device):
        payload = stage_payload(ddr3_device, DramPowerModel(ddr3_device))
        store = SharedStageStore.create(payload)
        store.destroy()
        store.destroy()

    def test_load_unknown_name_raises(self):
        with pytest.raises(Exception):
            SharedStageStore.load("repro-no-such-segment")

    def test_publish_none_payload_is_none(self):
        assert publish_stage_payload(None) is None

    def test_publish_unpicklable_payload_is_none(self):
        assert publish_stage_payload({"power": ("k", lambda: 1)}) is None


class TestWorkerSeeding:
    def test_process_sweep_counts_store_and_loads(self, ddr3_device):
        devices = _variants(ddr3_device)
        session = EvaluationSession()
        pooled = session.map(devices, _power, jobs=2, backend="process")
        stats = session.stats
        assert stats.shm_stores == 1
        assert stats.shm_loads >= 1
        assert stats.shm_errors == 0
        assert pooled == [_power(DramPowerModel(d)) for d in devices]

    def test_workers_reuse_seeded_stages(self, ddr3_device):
        # The acceptance property of the shared-memory store: worker
        # builds hit seeded stages instead of full-rebuilding the base
        # model from scratch.  The parent's own single build misses
        # every stage, so any merged hit came from a worker.
        devices = _variants(ddr3_device)
        session = EvaluationSession()
        session.map(devices, _power, jobs=2, backend="process")
        stats = session.stats
        assert stats.stage_hits > 0
        # The base device itself is a full-reuse build in whichever
        # worker receives it: 5 hits; voltage variants reuse 2 each.
        assert stats.stage_hits >= 2 * (len(devices) - 1)

    def test_no_segments_leak_after_clean_sweep(self, ddr3_device):
        before = _shm_entries()
        session = EvaluationSession()
        session.map(_variants(ddr3_device), _power, jobs=2,
                    backend="process")
        assert _shm_entries() - before == set()


class TestCrashCleanup:
    def test_no_segments_leak_after_worker_kill(self, ddr3_device,
                                                tmp_path):
        devices = _variants(ddr3_device)
        flag = tmp_path / "kill-once"
        fn = functools.partial(power_kill_once, str(flag))
        flag.write_text("armed")
        before = _shm_entries()
        session = EvaluationSession()
        pooled = session.map(devices, fn, jobs=2, backend="process")
        assert _shm_entries() - before == set()
        assert session.stats.pool_retries >= 1
        assert pooled == [fn(DramPowerModel(d)) for d in devices]

    def test_no_segments_leak_after_serial_fallback(self, ddr3_device,
                                                    tmp_path):
        devices = _variants(ddr3_device)
        flag = tmp_path / "kill-always"
        flag.write_text("armed")
        fn = functools.partial(power_kill_always, str(flag))
        before = _shm_entries()
        session = EvaluationSession()
        pooled = session.map(devices, fn, jobs=2, backend="process")
        assert _shm_entries() - before == set()
        stats = session.stats
        assert stats.serial_fallbacks > 0
        flag.unlink()
        assert pooled == [fn(DramPowerModel(d)) for d in devices]
