"""The job subsystem over HTTP: endpoints, handles, fleet sharing."""

import threading
import time

import pytest

from repro.client import NO_RETRY, JobHandle, ServiceClient
from repro.errors import JobError, JobNotFound, ServiceError
from repro.service import create_service
from repro.service.faults import FaultRule

MC = {"samples": 6, "seed": 3}


@pytest.fixture()
def jobs_service(tmp_path):
    svc = create_service(host="127.0.0.1", port=0,
                         jobs_dir=str(tmp_path / "jobs"))
    svc.jobs.poll_interval = 0.02
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=10)
    assert not thread.is_alive()


def _client(svc, **kwargs):
    return ServiceClient(f"http://127.0.0.1:{svc.server_port}",
                         **kwargs)


class TestJobEndpoints:
    def test_submit_watch_result(self, jobs_service):
        client = _client(jobs_service)
        handle = client.submit_job("montecarlo", params=MC,
                                   chunk_size=2)
        assert handle.submitted["created"] is True
        assert handle.submitted["state"] == "pending"
        states = [s["state"] for s in handle.watch(interval=0.02,
                                                   timeout=30.0)]
        assert states[-1] == "done"
        result = handle.result(timeout=30.0)
        assert result["kind"] == "montecarlo"
        assert result["samples"] == 6
        final = handle.status()
        assert final["chunks_done"] == final["chunks_total"] == 3
        client.close()

    def test_idempotent_resubmit(self, jobs_service):
        client = _client(jobs_service)
        first = client.submit_job("montecarlo", params=MC,
                                  idempotency_key="idem")
        again = client.submit_job("montecarlo", params=MC,
                                  idempotency_key="idem")
        assert first.id == again.id
        assert again.submitted["created"] is False
        client.close()

    def test_conflicting_key_is_409(self, jobs_service):
        client = _client(jobs_service, retry=NO_RETRY)
        client.submit_job("montecarlo", params=MC,
                          idempotency_key="clash")
        with pytest.raises(ServiceError) as caught:
            client.submit_job("montecarlo", params=dict(MC, seed=9),
                              idempotency_key="clash")
        assert caught.value.status == 409
        client.close()

    def test_listing_counts_jobs(self, jobs_service):
        client = _client(jobs_service)
        client.submit_job("montecarlo", params=MC)
        listing = client.request("GET", "/jobs")
        assert listing["count"] == len(listing["jobs"]) >= 1
        client.close()

    def test_unknown_job_raises_not_found(self, jobs_service):
        client = _client(jobs_service)
        with pytest.raises(JobNotFound):
            client.job("jmissing123456789").status()
        with pytest.raises(JobNotFound):
            client.job("jmissing123456789").cancel()
        client.close()

    def test_result_before_done_is_409(self, jobs_service):
        # Submit directly into the store, never run: stays pending.
        status, _ = jobs_service.jobs.store.submit(
            {"kind": "montecarlo", "params": MC,
             "idempotency_key": "parked"})
        client = _client(jobs_service, retry=NO_RETRY)
        with pytest.raises(ServiceError) as caught:
            client.request("GET", f"/jobs/{status['job']}/result")
        assert caught.value.status == 409
        client.close()

    def test_cancel_pending_job(self, jobs_service):
        status, _ = jobs_service.jobs.store.submit(
            {"kind": "montecarlo", "params": MC,
             "idempotency_key": "doomed"})
        client = _client(jobs_service)
        after = client.job(status["job"]).cancel()
        assert after["state"] == "cancelled"
        with pytest.raises(JobError):
            client.job(status["job"]).result(timeout=5.0)
        client.close()

    def test_failed_job_raises_job_error(self, jobs_service):
        client = _client(jobs_service)
        # Valid at submit, dies at planning: unknown trend node.
        handle = client.submit_job(
            "sweep", params={"kind": "trends", "nodes": [999]})
        with pytest.raises(JobError) as caught:
            handle.result(interval=0.02, timeout=30.0)
        assert "failed" in str(caught.value)
        client.close()

    def test_stats_exposes_job_counters(self, jobs_service):
        client = _client(jobs_service)
        handle = client.submit_job("montecarlo", params=MC)
        handle.result(interval=0.02, timeout=30.0)
        stats = client.stats()
        assert stats["jobs"]["jobs_started"] >= 1
        client.close()

    def test_watch_absorbs_transient_shedding(self, jobs_service):
        client = _client(jobs_service, retry=NO_RETRY, breaker=None)
        handle = client.submit_job("montecarlo", params=MC)
        jobs_service.faults.rules.append(
            FaultRule(kind="error", path=f"/jobs/{handle.id}",
                      times=2, status=503))
        states = [s["state"] for s in handle.watch(interval=0.02,
                                                   timeout=30.0)]
        assert states[-1] == "done"
        assert jobs_service.faults.snapshot()["error"] == 2
        client.close()

    def test_watch_timeout_raises_job_error(self, jobs_service):
        status, _ = jobs_service.jobs.store.submit(
            {"kind": "montecarlo", "params": MC,
             "idempotency_key": "stuck"})
        # Park it as claimed so the manager never runs it.
        claim = jobs_service.jobs.store.claim(status["job"])
        client = _client(jobs_service)
        try:
            with pytest.raises(JobError) as caught:
                client.job(status["job"]).wait(interval=0.02,
                                               timeout=0.2)
            assert "timed out" in str(caught.value)
        finally:
            claim.release()
            client.close()

    def test_ttl_gc_expires_job_to_404(self, jobs_service):
        client = _client(jobs_service)
        handle = client.submit_job("montecarlo", params=MC)
        handle.result(interval=0.02, timeout=30.0)
        time.sleep(0.05)
        assert jobs_service.jobs.store.gc(ttl=0.01) >= 1
        with pytest.raises(JobNotFound):
            handle.status()
        client.close()


class TestJobsDisabled:
    def test_disabled_service_says_503_with_retry_after(self):
        svc = create_service(host="127.0.0.1", port=0)
        thread = threading.Thread(target=svc.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            client = _client(svc, retry=NO_RETRY, breaker=None)
            for method, path in (("POST", "/jobs"),
                                 ("GET", "/jobs"),
                                 ("DELETE", "/jobs/jx")):
                with pytest.raises(ServiceError) as caught:
                    client.request(method, path,
                                   {"kind": "montecarlo",
                                    "params": MC}
                                   if method == "POST" else None)
                assert caught.value.status == 503
                assert caught.value.retry_after is not None
            client.close()
        finally:
            svc.shutdown()
            svc.server_close()
            thread.join(timeout=10)


class TestFleetSharing:
    def test_shared_service_reuses_manager(self, tmp_path):
        from repro.service import EvaluationService
        primary = create_service(host="127.0.0.1", port=0,
                                 jobs_dir=str(tmp_path / "jobs"))
        secondary = EvaluationService(("127.0.0.1", 0),
                                      affinity=False,
                                      shared_with=primary)
        try:
            assert secondary.jobs is primary.jobs
        finally:
            secondary.server_close()
            primary.server_close()

    def test_orphan_adopted_by_second_manager(self, tmp_path):
        """A dead worker's half-done job finishes on a sibling."""
        from repro.engine import EvaluationSession
        from repro.jobs import JobManager, JobStore, plan_job

        root = tmp_path / "jobs"
        store = JobStore(root)
        status, _ = store.submit(
            {"kind": "montecarlo", "params": MC, "chunk_size": 2,
             "idempotency_key": "orphan"})
        job_id = status["job"]
        session = EvaluationSession()
        plan = plan_job(store.load_spec(job_id), session)
        store.journal(job_id).append_chunk(0, plan.run_chunk(0))
        store.write_status(job_id, state="running", worker=0,
                           pid=99999999)
        assert store.reassign_orphans({1: {}}) == 1
        sibling = JobManager(str(root), session=session, worker_id=1)
        sibling.run_pending()
        after = store.status(job_id)
        assert after["state"] == "done"
        assert after["replayed_chunks"] == 1
        assert after["computed_chunks"] == 2
        assert sibling.jobs_resumed == 1
