"""Shared fixtures: representative devices and their power models."""

import pytest

from repro import DramPowerModel
from repro.devices import (
    build_device,
    ddr2_1g,
    ddr3_1g,
    ddr3_2g_55nm,
    ddr5_16g_18nm,
    sdr_128m_170nm,
)


@pytest.fixture(scope="session")
def ddr3_device():
    """The paper's main example: 2 Gb DDR3-1600 x16 at 55 nm."""
    return ddr3_2g_55nm()


@pytest.fixture(scope="session")
def ddr3_model(ddr3_device):
    return DramPowerModel(ddr3_device)


@pytest.fixture(scope="session")
def sdr_device():
    """The oldest sensitivity device: 128 Mb SDR at 170 nm."""
    return sdr_128m_170nm()


@pytest.fixture(scope="session")
def sdr_model(sdr_device):
    return DramPowerModel(sdr_device)


@pytest.fixture(scope="session")
def ddr5_device():
    """The forecast device: 16 Gb DDR5 at 18 nm."""
    return ddr5_16g_18nm()


@pytest.fixture(scope="session")
def ddr5_model(ddr5_device):
    return DramPowerModel(ddr5_device)


@pytest.fixture(scope="session")
def ddr2_device():
    """A Figure 8 verification part: 1 Gb DDR2-800 x16 at 75 nm."""
    return ddr2_1g(800e6, 16)


@pytest.fixture(scope="session")
def ddr2_model(ddr2_device):
    return DramPowerModel(ddr2_device)


@pytest.fixture(scope="session")
def ddr3_1g_device():
    """A Figure 9 verification part: 1 Gb DDR3-1333 x16 at 65 nm."""
    return ddr3_1g(1333e6, 16)


@pytest.fixture(scope="session")
def all_devices(ddr3_device, sdr_device, ddr5_device, ddr2_device,
                ddr3_1g_device):
    return [ddr3_device, sdr_device, ddr5_device, ddr2_device,
            ddr3_1g_device]


@pytest.fixture(scope="session")
def x4_device():
    """A narrow device exercising the x4 parameter corner."""
    return build_device(65, interface="DDR3", density_bits=1 << 30,
                        io_width=4, datarate=1066e6)
