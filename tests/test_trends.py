"""Tests for the generation trends (Figures 11-13, §IV.B/§IV.C)."""

import pytest

from repro.analysis import (
    energy_reduction_factors,
    generation_trend,
    power_shift,
    timing_trend,
    voltage_trend,
)
from repro.technology.roadmap import nodes


@pytest.fixture(scope="module")
def points():
    return generation_trend()


class TestFigure11:
    def test_voltage_trend_covers_roadmap(self):
        trend = voltage_trend()
        assert len(trend) == len(nodes())
        assert trend[0]["node_nm"] == 170
        assert trend[-1]["node_nm"] == 16

    def test_vdd_declines(self):
        trend = voltage_trend()
        vdd = [point["vdd"] for point in trend]
        assert vdd[0] == 3.3
        assert all(a >= b for a, b in zip(vdd, vdd[1:]))

    def test_vpp_stays_highest(self):
        for point in voltage_trend():
            assert point["vpp"] > point["vdd"]
            assert point["vdd"] >= point["vint"] >= point["vbl"]


class TestFigure12:
    def test_datarate_doubling_per_family(self):
        trend = timing_trend()
        first = trend[0]["datarate_gbps"]
        last = trend[-1]["datarate_gbps"]
        assert last / first > 30  # 166 Mb/s → 6.4 Gb/s

    def test_core_frequency_flat(self):
        trend = timing_trend()
        cores = [point["core_frequency_mhz"] for point in trend]
        assert max(cores) / min(cores) < 2.0

    def test_prefetch_reaches_32(self):
        trend = timing_trend()
        assert trend[-1]["prefetch"] == 32.0

    def test_trc_improves_slowly(self):
        trend = timing_trend()
        assert trend[0]["trc_ns"] / trend[-1]["trc_ns"] < 2.0


class TestFigure13:
    def test_energy_per_bit_declines_monotonically(self, points):
        energies = [point.energy_idd7_pj for point in points]
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_early_reduction_factor(self, points):
        # Paper: ≈1.5× per generation 170 → 44 nm (2000-2010).
        early, _ = energy_reduction_factors(points)
        assert 1.4 < early < 1.75

    def test_late_reduction_factor_flattens(self, points):
        # Paper: only ≈1.2× per generation in the forecast.
        early, late = energy_reduction_factors(points)
        assert 1.1 < late < 1.35
        assert late < early

    def test_die_areas_in_band(self, points):
        # "the die area is between about 40 mm² and 60 mm²"; allow the
        # spread real products showed.
        for point in points:
            assert 25 < point.die_area_mm2 < 95, point.node_nm

    def test_idd4_energy_below_idd7(self, points):
        # The Idd4 pattern omits row activation energy, so it must sit
        # below the interleaved Idd7 figure.
        for point in points:
            assert point.energy_idd4_pj < point.energy_idd7_pj

    def test_absolute_energy_scale(self, points):
        by_node = {point.node_nm: point for point in points}
        # DDR3-era devices land at tens of pJ/bit; the DDR5 forecast at
        # a few pJ/bit.
        assert 8 < by_node[55].energy_idd7_pj < 40
        assert 1 < by_node[18].energy_idd7_pj < 8


class TestPowerShift:
    def test_shares_sum_to_one(self, points):
        for point in points:
            total = (point.row_power_share + point.column_power_share
                     + point.background_power_share)
            assert total == pytest.approx(1.0)

    def test_row_share_falls_with_generation(self, points):
        # §IV.B: power shifts from the activate/precharge (row) operation
        # to read/write as bandwidth grows much faster than row rates.
        first = points[0]
        last = points[-1]
        assert last.row_power_share < first.row_power_share

    def test_array_component_share_falls(self, points):
        # "the share of power usage is shifting away from the DRAM
        # specific cell array circuitry to general logic" (§VI).
        first = points[0]
        last = points[-1]
        assert last.array_component_share < first.array_component_share

    def test_power_shift_report(self, points):
        rows = power_shift(points)
        assert len(rows) == len(points)
        assert set(rows[0]) == {"node_nm", "row_share", "column_share",
                                "background_share",
                                "array_component_share"}


class TestGenerationPointDetails:
    def test_interfaces_in_order(self, points):
        order = ["SDR", "DDR", "DDR2", "DDR3", "DDR4", "DDR5"]
        seen = [point.interface for point in points]
        indices = [order.index(name) for name in seen]
        assert indices == sorted(indices)

    def test_subset_of_nodes(self):
        subset = generation_trend(node_list=[55, 18])
        assert [point.node_nm for point in subset] == [55, 18]

    def test_idd_currents_present(self, points):
        for point in points:
            assert point.idd0_ma > 0
            assert point.idd4r_ma > 0
