"""Columnar kernel and backend-choice tests.

The columnar fast path is held to one standard: every observable —
energies, counts, durations, even error messages with their global
line numbers — must be bit-identical to the scalar pipeline, across
formats, decode policies, shard geometries and batch boundaries.
"""

import importlib.util
import json
import sys

import pytest

from repro import DramPowerModel
from repro.core.trace import TraceAccumulator, TraceError
from repro.devices import build_device
from repro.trace import (DEFAULT_CLOCK, AddressDecoder,
                         TraceFormatError, accumulate_records,
                         choose_trace_backend, columnar_available,
                         evaluate_trace_file, iter_records,
                         parse_columns, replay_lines_columnar,
                         replay_trace_file)
from repro.trace.columnar import reset_downgrades, trace_downgrades

needs_numpy = pytest.mark.skipif(not columnar_available(),
                                 reason="numpy not installed")


def _lcg(state):
    return (state * 1103515245 + 12345) & 0x7FFFFFFF


def make_lines(fmt, count, address_bits=26, with_refresh=True,
               seed=7):
    """Deterministic trace lines exercising the full address width."""
    lines = []
    state = seed
    mask = (1 << address_bits) - 1
    for i in range(count):
        state = _lcg(state)
        address = (state * 2654435761) & mask
        cycle = i * 4
        if with_refresh and i % 97 == 96:
            op, kind = "REF", "refresh"
        elif state % 3 == 0:
            op, kind = "P_MEM_WR", "write"
        else:
            op, kind = "P_MEM_RD", "read"
        if fmt == "k6":
            lines.append(f"0x{address:x} {op} {cycle}")
        elif fmt == "mase":
            mase_op = {"refresh": "REF", "write": "WRITE",
                       "read": "IFETCH"}[kind]
            lines.append(f"0x{address:x} {mase_op} {cycle}")
        else:
            lines.append(json.dumps({"addr": address, "op": op,
                                     "cycle": cycle}))
    return lines


def _fingerprint(accumulator):
    result = accumulator.result()
    return (result.energy, result.duration, result.counts,
            result.row_hits, result.row_misses, result.row_conflicts,
            result.data_bits, result.breakdown.values,
            accumulator.commands_seen)


def _serial_fingerprint(model, records, decoder):
    accumulator = accumulate_records(model, records, decoder=decoder,
                                     backend="serial")
    return _fingerprint(accumulator)


@needs_numpy
class TestColumnarParity:
    """vector == serial, bit for bit, across the whole matrix."""

    @pytest.mark.parametrize("fmt", ["k6", "mase", "jsonl"])
    @pytest.mark.parametrize("policy", ["row-bank-column",
                                        "bank-row-column"])
    def test_formats_and_policies(self, fmt, policy, tmp_path):
        device = build_device(55)
        model = DramPowerModel(device)
        decoder = AddressDecoder.from_device(device, policy=policy,
                                             channel_bits=1,
                                             rank_bits=1)
        lines = make_lines(fmt, 3000,
                           address_bits=decoder.address_bits)
        path = tmp_path / f"t.{fmt}.trc"
        path.write_text("\n".join(lines) + "\n")
        serial = evaluate_trace_file(model, path, fmt=fmt,
                                     decoder=decoder,
                                     backend="serial")
        vector = evaluate_trace_file(model, path, fmt=fmt,
                                     decoder=decoder,
                                     backend="vector")
        assert vector.energy == serial.energy
        assert vector.duration == serial.duration
        assert vector.counts == serial.counts
        assert vector.row_hits == serial.row_hits
        assert vector.breakdown.values == serial.breakdown.values

    def test_batch_boundaries_carry_open_rows(self, ddr3_model):
        decoder = AddressDecoder.from_device(ddr3_model.device)
        lines = make_lines("k6", 500)
        records = list(iter_records(iter(lines), "k6"))
        expect = _serial_fingerprint(ddr3_model, iter(records),
                                     decoder)
        for batch_lines in (1, 3, 17, 499, 10_000):
            accumulator = TraceAccumulator(ddr3_model, strict=False)
            replay_lines_columnar(accumulator, iter(lines), "k6",
                                  decoder, DEFAULT_CLOCK,
                                  batch_lines=batch_lines)
            assert _fingerprint(accumulator) == expect

    def test_comments_blanks_and_case_match_scalar(self, ddr3_model):
        decoder = AddressDecoder.from_device(ddr3_model.device)
        lines = ["# header", "", "0x100 read 1", "; note",
                 "0x200 Wr 2", "0x100 P_MEM_RD 3", "  ", "0x0 REF 9",
                 "0x300 rd 11"]
        records = list(iter_records(iter(lines), "k6"))
        expect = _serial_fingerprint(ddr3_model, iter(records),
                                     decoder)
        accumulator = TraceAccumulator(ddr3_model, strict=False)
        replay_lines_columnar(accumulator, iter(lines), "k6", decoder,
                              DEFAULT_CLOCK)
        assert _fingerprint(accumulator) == expect

    def test_record_stream_backend_parity(self, ddr3_model):
        decoder = AddressDecoder.from_device(ddr3_model.device,
                                             channel_bits=1)
        lines = make_lines("k6", 2000,
                           address_bits=decoder.address_bits)
        records = list(iter_records(iter(lines), "k6"))
        serial = _serial_fingerprint(ddr3_model, iter(records),
                                     decoder)
        vector = accumulate_records(ddr3_model, iter(records),
                                    decoder=decoder,
                                    backend="vector")
        auto = accumulate_records(ddr3_model, iter(records),
                                  decoder=decoder)
        assert _fingerprint(vector) == serial
        assert _fingerprint(auto) == serial

    def test_oversize_addresses_fall_back_exactly(self, ddr3_model):
        # 1 << 70 cannot live in an int64 array: the batch must drop
        # to the scalar fold, splicing the open-row register exactly.
        decoder = AddressDecoder.from_device(ddr3_model.device)
        lines = make_lines("k6", 50)
        lines.insert(25, f"0x{1 << 70:x} READ 99")
        records = list(iter_records(iter(lines), "k6"))
        expect = _serial_fingerprint(ddr3_model, iter(records),
                                     decoder)
        accumulator = TraceAccumulator(ddr3_model, strict=False)
        replay_lines_columnar(accumulator, iter(lines), "k6", decoder,
                              DEFAULT_CLOCK, batch_lines=10)
        assert _fingerprint(accumulator) == expect


@needs_numpy
class TestErrorParity:
    """The fast path must raise the scalar path's exact errors."""

    def _error_of(self, model, path, fmt, backend):
        decoder = AddressDecoder.from_device(model.device)
        with pytest.raises(TraceFormatError) as excinfo:
            evaluate_trace_file(model, path, fmt=fmt, decoder=decoder,
                                backend=backend)
        return str(excinfo.value), excinfo.value.line

    @pytest.mark.parametrize("bad_line", [
        "0x10 BOGUS 5",          # unknown op
        "0x10 READ",             # wrong arity
        "zz READ 5",             # bad address
        "0x10 READ -5",          # negative cycle
        "0x10 READ nope",        # bad cycle
    ])
    def test_malformed_lines(self, ddr3_model, tmp_path, bad_line):
        lines = make_lines("k6", 40)
        lines.insert(20, bad_line)
        path = tmp_path / "bad.trc"
        path.write_text("\n".join(lines) + "\n")
        serial = self._error_of(ddr3_model, path, "k6", "serial")
        vector = self._error_of(ddr3_model, path, "k6", "vector")
        assert vector == serial
        assert serial[1] == 21  # the global line number, not batch

    def test_blank_plus_six_token_line_goes_scalar(self):
        # A blank line next to a double line keeps the flat token
        # count at 4n-1 but shifts payload into the sentinel slots —
        # the arity check must catch it and the scalar parser must
        # raise its usual error.
        lines = ["0x10 READ 1", "",
                 "0x20 READ 2 0x30 READ 3"]
        with pytest.raises(TraceFormatError) as excinfo:
            parse_columns(lines, "k6", source="t.trc")
        assert "t.trc:3" in str(excinfo.value)

    def test_parse_columns_matches_scalar_records(self):
        lines = make_lines("k6", 200)
        columns = parse_columns(lines, "k6")
        records = list(iter_records(iter(lines), "k6"))
        assert list(columns.addresses) == [r.address for r in records]
        assert list(columns.cycles) == [r.cycle for r in records]
        kinds = {0: "read", 1: "write", 2: "refresh"}
        assert ([kinds[int(code)] for code in columns.kinds]
                == [r.kind for r in records])


class TestStrictRejection:
    def test_vector_backend_rejects_strict(self, ddr3_model,
                                           tmp_path):
        path = tmp_path / "s.trc"
        path.write_text("0x100 READ 1\n")
        for backend in ("vector", "process"):
            with pytest.raises(TraceError, match="strict"):
                evaluate_trace_file(ddr3_model, path, backend=backend,
                                    strict=True)

    def test_auto_stays_serial_for_strict(self, ddr3_model, tmp_path):
        # Expanded ACT+RD share a timestamp, so only a refresh-only
        # trace is strict-legal; spacing them past tRFC keeps it so.
        path = tmp_path / "s.trc"
        path.write_text("0x0 REF 1000\n0x0 REF 2000\n")
        _, backend = replay_trace_file(ddr3_model, path, strict=True)
        assert backend == "serial"

    def test_unknown_backend_rejected(self, ddr3_model, tmp_path):
        path = tmp_path / "s.trc"
        path.write_text("0x100 READ 1\n")
        with pytest.raises(TraceError, match="unknown trace backend"):
            evaluate_trace_file(ddr3_model, path, backend="quantum")


class TestBackendChoice:
    def test_strict_is_always_serial(self):
        assert choose_trace_backend(strict=True, shards=64,
                                    jobs=32) == "serial"

    @needs_numpy
    def test_numpy_means_vector(self):
        assert choose_trace_backend(strict=False) == "vector"
        assert choose_trace_backend(strict=False, shards=64,
                                    jobs=32) == "vector"


def _import_columnar_without_numpy(monkeypatch):
    """A fresh repro.trace.columnar instance with numpy blocked."""
    import repro.trace.columnar as real
    monkeypatch.setitem(sys.modules, "numpy", None)
    spec = importlib.util.spec_from_file_location(
        "repro.trace.columnar", real.__file__)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestNoNumpyDegradation:
    """Without numpy every columnar entry point degrades to scalar,
    fires the one-time marker, and changes no results."""

    def test_auto_degrades_serially_with_marker(self, ddr3_model,
                                                monkeypatch):
        decoder = AddressDecoder.from_device(ddr3_model.device)
        lines = make_lines("k6", 300)
        records = list(iter_records(iter(lines), "k6"))
        expect = _serial_fingerprint(ddr3_model, iter(records),
                                     decoder)
        stub = _import_columnar_without_numpy(monkeypatch)
        assert stub.columnar_available() is False
        assert stub.trace_downgrades() == 0
        # ingest imports the columnar module lazily, so installing
        # the numpy-free instance reroutes the auto backend.
        monkeypatch.setitem(sys.modules, "repro.trace.columnar", stub)
        first = accumulate_records(ddr3_model, iter(records),
                                   decoder=decoder)
        assert stub.trace_downgrades() == 1
        second = accumulate_records(ddr3_model, iter(records),
                                    decoder=decoder)
        assert stub.trace_downgrades() == 1  # marker is one-time
        assert _fingerprint(first) == expect
        assert _fingerprint(second) == expect

    def test_explicit_vector_degrades_with_marker(self, ddr3_model,
                                                  monkeypatch,
                                                  tmp_path):
        path = tmp_path / "t.trc"
        path.write_text("\n".join(make_lines("k6", 200)) + "\n")
        decoder = AddressDecoder.from_device(ddr3_model.device)
        expect = evaluate_trace_file(ddr3_model, path,
                                     decoder=decoder,
                                     backend="serial")
        stub = _import_columnar_without_numpy(monkeypatch)
        monkeypatch.setitem(sys.modules, "repro.trace.columnar", stub)
        accumulator, backend = replay_trace_file(
            ddr3_model, path, decoder=decoder, backend="vector")
        assert backend == "serial"
        assert stub.trace_downgrades() == 1
        result = accumulator.result()
        assert result.energy == expect.energy
        assert result.counts == expect.counts

    def test_stub_replayer_refuses_to_build(self, ddr3_model,
                                            monkeypatch):
        stub = _import_columnar_without_numpy(monkeypatch)
        decoder = AddressDecoder.from_device(ddr3_model.device)
        accumulator = TraceAccumulator(ddr3_model, strict=False)
        with pytest.raises(TraceError, match="numpy"):
            stub.ColumnarReplayer(accumulator, "k6", decoder,
                                  DEFAULT_CLOCK)

    def test_stub_choice_prefers_process_for_big_shardable(
            self, monkeypatch):
        stub = _import_columnar_without_numpy(monkeypatch)
        big = 2 * stub.MIN_PROCESS_BYTES
        assert stub.choose_trace_backend(
            strict=False, shards=4, jobs=4, size_bytes=big
        ) == "process"
        # Small files, single shards or single workers stay serial.
        assert stub.choose_trace_backend(
            strict=False, shards=4, jobs=4, size_bytes=1024
        ) == "serial"
        assert stub.choose_trace_backend(
            strict=False, shards=1, jobs=4, size_bytes=big
        ) == "serial"
        assert stub.choose_trace_backend(
            strict=False, shards=4, jobs=1, size_bytes=big
        ) == "serial"
        assert stub.trace_downgrades() == 1

    def test_downgrade_marker_reset_hook(self):
        before = trace_downgrades()
        reset_downgrades()
        assert trace_downgrades() == 0
        if before:  # leave the process-global marker as found
            from repro.trace.columnar import record_downgrade
            record_downgrade()
