"""The columnar vectorized kernel (``repro.engine.vector``).

Three concerns, in the order the ISSUE states them:

* **parity** — vector-folded models agree with the scalar oracle to
  1e-9 relative (measured: ~1e-15, float summation order only) across
  the datasheet corpus, for voltage, technology and mixed Monte-Carlo
  style families, under both the explicit ``backend="vector"`` and the
  ``"auto"`` routing;
* **fallback** — ineligible structures (singletons, mixed floorplans)
  take the scalar path and are counted, and a process without numpy
  degrades whole batches to scalar with the one-time
  ``vector_downgrades`` marker;
* **policy** — grouping, eligibility, the cost model extension of
  ``choose_backend`` and the counters the engine stats report.
"""

import importlib.util
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.montecarlo import monte_carlo
from repro.analysis.sensitivity import sensitivity
from repro.devices import build_device
from repro.engine import (MIN_BATCH, VECTOR, EvaluationSession,
                          build_family_models, choose_backend,
                          estimate_vector_seconds, numpy_available,
                          plan_batches, resolve_backend)
from repro.engine.executor import DEFAULT_VECTOR_SECONDS
from repro.engine.cache import EngineStats

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")

TOLERANCE = 1e-9


def _power(model):
    return model.pattern_power().power


def _voltage_family(device, points=12):
    return [device.scale_path("voltages.vint", 1.0 + 0.003 * step)
            for step in range(points)]


def _technology_family(device, points=12):
    return [device.scale_path("technology.c_bitline",
                              1.0 + 0.004 * step)
            for step in range(points)]


def _mixed_family(device, points=12):
    # Monte-Carlo shape: voltage and capacitance move together.
    return [device.scale_path("voltages.vbl", 1.0 + 0.002 * step)
            .scale_path("technology.c_cell", 1.0 + 0.003 * step)
            for step in range(points)]


def _assert_parity(vector_values, serial_values):
    assert len(vector_values) == len(serial_values)
    for folded, oracle in zip(vector_values, serial_values):
        assert folded == pytest.approx(oracle, rel=TOLERANCE)


# ----------------------------------------------------------------------
# Parity against the scalar oracle.
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("family", [_voltage_family,
                                    _technology_family,
                                    _mixed_family])
def test_parity_across_datasheet_corpus(all_devices, family):
    for device in all_devices:
        devices = family(device)
        folded = EvaluationSession().map(devices, _power,
                                         backend="vector")
        oracle = EvaluationSession().map(devices, _power,
                                         backend="serial")
        _assert_parity(folded, oracle)


@needs_numpy
def test_vector_models_are_fully_usable(ddr3_device):
    devices = _voltage_family(ddr3_device)
    session = EvaluationSession()
    models = build_family_models(devices, session.cache)
    scalar = EvaluationSession()
    for device, model in zip(devices, models):
        oracle = scalar.model(device)
        # Folded energies, lazily-resolved events, geometry binding.
        assert model.pattern_power().power == pytest.approx(
            oracle.pattern_power().power, rel=TOLERANCE)
        assert len(model.events) == len(oracle.events)
        assert model.geometry.device is device
        for left, right in zip(model.events, oracle.events):
            assert left.swing == pytest.approx(right.swing,
                                               rel=TOLERANCE)
            assert left.capacitance == right.capacitance


@needs_numpy
def test_auto_routes_wide_families_through_vector(ddr3_device):
    devices = _voltage_family(ddr3_device, points=16)
    session = EvaluationSession()
    auto = session.map(devices, _power, backend="auto")
    stats = session.stats
    assert stats.vector_batches >= 1
    assert stats.vector_builds == len(devices)
    oracle = EvaluationSession().map(devices, _power, backend="serial")
    _assert_parity(auto, oracle)


@needs_numpy
def test_sensitivity_auto_matches_serial(ddr3_device):
    session = EvaluationSession()
    auto = sensitivity(ddr3_device, variation=0.1, backend="auto",
                       session=session)
    serial = sensitivity(ddr3_device, variation=0.1, backend="serial",
                         session=EvaluationSession())
    assert session.stats.vector_builds > 0
    assert [row.name for row in auto] == [row.name for row in serial]
    for left, right in zip(auto, serial):
        assert left.impact == pytest.approx(right.impact,
                                            rel=TOLERANCE)


@needs_numpy
def test_monte_carlo_vector_matches_serial(ddr3_device):
    folded = monte_carlo(ddr3_device, samples=16, backend="vector",
                         session=EvaluationSession())
    oracle = monte_carlo(ddr3_device, samples=16, backend="serial",
                         session=EvaluationSession())
    for left, right in zip(folded, oracle):
        assert left.mean == pytest.approx(right.mean, rel=TOLERANCE)
        assert left.maximum == pytest.approx(right.maximum,
                                             rel=TOLERANCE)


@needs_numpy
@settings(max_examples=10, deadline=None)
@given(factor=st.floats(min_value=0.85, max_value=1.1,
                        allow_nan=False, allow_infinity=False),
       path=st.sampled_from(["voltages.vint", "voltages.vbl",
                             "voltages.vpp", "technology.c_bitline",
                             "technology.c_cell",
                             "technology.c_wire_signal"]))
def test_parity_property(factor, path):
    device = build_device(55)
    if path == "voltages.vint" and factor > 1.0:
        # vint has only ~8 % headroom below vdd; mirror upward
        # perturbations downward to stay inside the description
        # invariant while keeping the same magnitude.
        factor = 2.0 - factor
    steps = [1.0 + (factor - 1.0) * k / 8.0 for k in range(9)]
    devices = [device.scale_path(path, step) for step in steps]
    folded = EvaluationSession().map(devices, _power,
                                     backend="vector")
    oracle = EvaluationSession().map(devices, _power,
                                     backend="serial")
    _assert_parity(folded, oracle)


# ----------------------------------------------------------------------
# Caching semantics.
# ----------------------------------------------------------------------
@needs_numpy
def test_vector_models_enter_the_lru(ddr3_device):
    devices = _voltage_family(ddr3_device)
    session = EvaluationSession()
    session.map(devices, _power, backend="vector")
    first = session.stats
    assert first.vector_builds == len(devices)
    assert first.lookups == first.vector_builds
    # The refold finds every model in the LRU: all hits, no new folds.
    session.map(devices, _power, backend="vector")
    second = session.stats
    assert second.hits == first.hits + len(devices)
    assert second.vector_builds == first.vector_builds


@needs_numpy
def test_partially_warm_batch_folds_the_remainder(ddr3_device):
    devices = _voltage_family(ddr3_device, points=10)
    session = EvaluationSession()
    session.map(devices[:4], _power, backend="vector")
    session.map(devices, _power, backend="vector")
    stats = session.stats
    assert stats.hits == 4
    assert stats.vector_builds == len(devices)


# ----------------------------------------------------------------------
# Fallback accounting.
# ----------------------------------------------------------------------
@needs_numpy
def test_singletons_fall_back_to_scalar(ddr3_device, ddr5_device):
    # Two one-device "families": no subgroup reaches two members.
    session = EvaluationSession()
    results = session.map([ddr3_device, ddr5_device], _power,
                          backend="vector")
    stats = session.stats
    assert stats.vector_fallbacks == 2
    assert stats.vector_builds == 0
    oracle = EvaluationSession().map([ddr3_device, ddr5_device],
                                     _power, backend="serial")
    assert results == oracle


@needs_numpy
def test_mixed_batch_folds_families_and_spills_the_rest(
        ddr3_device, ddr5_device):
    devices = _voltage_family(ddr3_device) + [ddr5_device]
    session = EvaluationSession()
    results = session.map(devices, _power, backend="vector")
    stats = session.stats
    assert stats.vector_builds == len(devices) - 1
    assert stats.vector_fallbacks == 1
    oracle = EvaluationSession().map(devices, _power,
                                     backend="serial")
    _assert_parity(results, oracle)


# ----------------------------------------------------------------------
# numpy-absent degradation.
# ----------------------------------------------------------------------
def _vector_module_without_numpy(monkeypatch):
    """Re-execute repro.engine.vector with numpy import-blocked."""
    monkeypatch.setitem(sys.modules, "numpy", None)
    spec = importlib.util.find_spec("repro.engine.vector")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_import_survives_numpy_absence(monkeypatch):
    module = _vector_module_without_numpy(monkeypatch)
    assert module._np is None
    assert module.numpy_available() is False


def test_no_numpy_batch_degrades_with_marker(monkeypatch, ddr3_device):
    module = _vector_module_without_numpy(monkeypatch)
    devices = _voltage_family(ddr3_device)
    session = EvaluationSession()
    models = module.build_family_models(devices, session.cache)
    stats = session.stats
    assert stats.vector_downgrades == 1
    assert stats.vector_builds == 0
    assert stats.misses == len(devices)
    oracle = EvaluationSession()
    for device, model in zip(devices, models):
        assert model.pattern_power().power == \
            oracle.model(device).pattern_power().power


def test_no_numpy_marker_reports_once(monkeypatch, ddr3_device):
    module = _vector_module_without_numpy(monkeypatch)
    session = EvaluationSession()
    for _ in range(3):
        module.build_family_models([ddr3_device], session.cache)
    assert session.stats.vector_downgrades == 1


def test_session_degrades_without_numpy(monkeypatch, ddr3_device):
    # The live session module: blind the kernel, keep everything else.
    monkeypatch.setattr("repro.engine.vector._np", None)
    devices = _voltage_family(ddr3_device)
    session = EvaluationSession()
    folded = session.map(devices, _power, backend="vector")
    assert session.stats.vector_downgrades == 1
    auto = session.map(devices, _power, backend="auto")
    assert session.stats.vector_batches == 0
    oracle = EvaluationSession().map(devices, _power,
                                     backend="serial")
    assert folded == oracle
    assert auto == oracle


# ----------------------------------------------------------------------
# Planning and grouping.
# ----------------------------------------------------------------------
def test_plan_groups_by_shared_floorplan(ddr3_device, ddr5_device):
    family = _voltage_family(ddr3_device, points=MIN_BATCH)
    plan = plan_batches(family + [ddr5_device])
    assert len(plan.groups) == 2
    sizes = sorted(len(members) for members in plan.groups.values())
    assert sizes == [1, MIN_BATCH]
    assert plan.eligible


def test_plan_below_batch_floor_is_ineligible(ddr3_device):
    plan = plan_batches(_voltage_family(ddr3_device,
                                        points=MIN_BATCH - 1))
    assert not plan.eligible
    assert plan_batches(_voltage_family(ddr3_device,
                                        points=MIN_BATCH)).eligible


def test_plan_keys_align_with_devices(ddr3_device):
    devices = _technology_family(ddr3_device, points=4)
    plan = plan_batches(devices)
    assert len(plan.geometry_keys) == len(devices)
    assert len(plan.capacitance_keys) == len(devices)
    # One floorplan, four perturbed technologies.
    assert len(set(plan.geometry_keys)) == 1
    assert len(set(plan.capacitance_keys)) == 4


# ----------------------------------------------------------------------
# Backend policy and cost model.
# ----------------------------------------------------------------------
def test_resolve_backend_passes_vector_through():
    assert resolve_backend(VECTOR, None) == VECTOR
    with pytest.raises(Exception, match="vector"):
        resolve_backend("cluster", None)


class TestChooseBackendVector:
    def test_single_worker_still_chooses_vector(self):
        # The kernel folds in-process: one usable CPU rules out the
        # pool, not the columnar path (the bug the ISSUE's cost-model
        # satellite names).
        assert choose_backend(64, jobs=1, build_seconds=0.005,
                              vector_eligible=True) == VECTOR

    def test_vector_beats_pool_on_fold_cost(self):
        assert choose_backend(400, jobs=4, build_seconds=0.005,
                              vector_eligible=True) == VECTOR

    def test_ineligible_keeps_scalar_decision(self):
        assert choose_backend(400, jobs=4, build_seconds=0.005,
                              vector_eligible=False) == "process"
        assert choose_backend(64, jobs=1, build_seconds=0.005,
                              vector_eligible=False) == "serial"

    def test_expensive_fold_loses_to_serial(self):
        assert choose_backend(64, jobs=1, build_seconds=0.005,
                              vector_eligible=True,
                              vector_seconds=0.05) == "serial"

    def test_tiny_sweeps_stay_serial_even_when_eligible(self):
        assert choose_backend(2, jobs=1, build_seconds=0.005,
                              vector_eligible=True) == "serial"

    def test_warm_cache_discounts_both_sides_equally(self):
        # A 99 % hit rate shrinks serial and vector alike; vector
        # still wins on the per-variant cost ratio.
        assert choose_backend(64, jobs=1, build_seconds=0.005,
                              expected_hit_rate=0.99,
                              vector_eligible=True) == VECTOR


class TestEstimateVectorSeconds:
    def test_default_without_stats(self):
        assert estimate_vector_seconds(None) == DEFAULT_VECTOR_SECONDS

    def test_default_before_first_fold(self):
        stats = EngineStats(hits=0, misses=0, evictions=0, size=0,
                            capacity=8, build_seconds=0.0)
        assert estimate_vector_seconds(stats) == DEFAULT_VECTOR_SECONDS

    def test_observed_cost_is_per_build(self):
        stats = EngineStats(hits=0, misses=0, evictions=0, size=0,
                            capacity=8, build_seconds=0.0,
                            vector_builds=50, vector_seconds=0.005)
        assert estimate_vector_seconds(stats) == pytest.approx(1e-4)


# ----------------------------------------------------------------------
# Stats plumbing.
# ----------------------------------------------------------------------
def test_stats_string_reports_vector_segment():
    stats = EngineStats(hits=0, misses=0, evictions=0, size=0,
                        capacity=8, build_seconds=0.0,
                        vector_batches=2, vector_builds=64,
                        vector_fallbacks=1, vector_seconds=0.5)
    text = str(stats)
    assert "vector[batches=2 builds=64 fallbacks=1" in text


@needs_numpy
def test_vector_builds_count_as_lookups_not_misses(ddr3_device):
    devices = _voltage_family(ddr3_device)
    session = EvaluationSession()
    session.map(devices, _power, backend="vector")
    stats = session.stats
    assert stats.misses == 0
    assert stats.lookups == stats.vector_builds
    # The scalar build-cost estimate stays untouched by folds, so the
    # auto policy keeps comparing true scalar vs vector costs.
    assert stats.build_seconds == 0.0
