"""Tests for off-roadmap node projection."""

import pytest

from repro import DramPowerModel
from repro.core.idd import idd7_mixed
from repro.errors import TechnologyError
from repro.technology import (
    ROADMAP,
    build_projected_device,
    projected_entry,
    roadmap_entry,
)


class TestProjectedEntry:
    def test_roadmap_nodes_pass_through(self):
        assert projected_entry(55) is roadmap_entry(55)

    def test_interpolated_voltages_between_neighbours(self):
        entry = projected_entry(60)  # between 65 and 55
        assert ROADMAP[55].vdd <= entry.vdd <= ROADMAP[65].vdd
        assert ROADMAP[55].vint <= entry.vint <= ROADMAP[65].vint
        assert ROADMAP[55].trc <= entry.trc <= ROADMAP[65].trc

    def test_interface_snaps_to_nearest(self):
        assert projected_entry(60).interface == "DDR3"
        assert projected_entry(100).interface == "DDR"

    def test_rail_ordering_preserved(self):
        for node in (150, 100, 80, 60, 40, 28, 19, 14):
            entry = projected_entry(node)
            assert entry.vpp > entry.vdd >= entry.vint >= entry.vbl, node

    def test_extrapolation_below_16_floors_voltages(self):
        entry = projected_entry(12)
        floor = roadmap_entry(16)
        assert entry.vdd >= floor.vdd - 1e-9
        assert entry.vbl >= floor.vbl - 1e-9

    def test_year_interpolates(self):
        entry = projected_entry(60)
        assert 2008 <= entry.year <= 2009

    def test_rejects_non_positive(self):
        with pytest.raises(TechnologyError):
            projected_entry(0)


class TestBuildProjectedDevice:
    def test_builds_between_nodes(self):
        device = build_projected_device(60)
        model = DramPowerModel(device)
        assert model.pattern_power().power > 0
        assert device.node == pytest.approx(60e-9)

    def test_roadmap_not_polluted(self):
        before = set(ROADMAP)
        build_projected_device(60)
        assert set(ROADMAP) == before

    def test_energy_falls_monotonically_through_projection(self):
        energies = []
        for node in (65, 60, 55):
            model = DramPowerModel(build_projected_device(node))
            energies.append(idd7_mixed(model).energy_per_bit)
        assert energies[0] > energies[1] > energies[2]

    def test_matches_builder_on_roadmap_node(self):
        from repro.devices import build_device
        projected = build_projected_device(55)
        direct = build_device(55)
        assert projected.voltages == direct.voltages
        assert projected.technology == direct.technology
