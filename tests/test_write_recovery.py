"""Tests for the tWR / tRTP protocol constraints."""

import pytest

from repro.core.trace import TraceCommand, TraceError, evaluate_trace
from repro.description import Command
from repro.errors import DescriptionError
from repro.workloads import OpenPageScheduler, Request


class TestChecker:
    def test_twr_violation_detected(self, ddr3_model):
        timing = ddr3_model.device.timing
        spec = ddr3_model.device.spec
        burst = spec.burst_length / spec.datarate
        # A late write, so tRAS is already satisfied and only the write
        # recovery gates the precharge.
        write_time = timing.tras
        trace = [
            TraceCommand(0.0, Command.ACT, bank=0),
            TraceCommand(write_time, Command.WR, bank=0),
            TraceCommand(write_time + burst + timing.twr * 0.5,
                         Command.PRE, bank=0),
        ]
        with pytest.raises(TraceError, match="tWR"):
            evaluate_trace(ddr3_model, trace)

    def test_twr_respected_is_legal(self, ddr3_model):
        timing = ddr3_model.device.timing
        spec = ddr3_model.device.spec
        burst = spec.burst_length / spec.datarate
        write_time = timing.trcd
        trace = [
            TraceCommand(0.0, Command.ACT, bank=0),
            TraceCommand(write_time, Command.WR, bank=0),
            TraceCommand(max(write_time + burst + timing.twr,
                             timing.tras),
                         Command.PRE, bank=0),
        ]
        result = evaluate_trace(ddr3_model, trace)
        assert result.counts[Command.WR] == 1

    def test_trtp_violation_detected(self, ddr3_model):
        timing = ddr3_model.device.timing
        late_read = timing.tras - timing.trtp * 0.5
        trace = [
            TraceCommand(0.0, Command.ACT, bank=0),
            TraceCommand(late_read, Command.RD, bank=0),
            TraceCommand(timing.tras, Command.PRE, bank=0),
        ]
        with pytest.raises(TraceError, match="tRTP"):
            evaluate_trace(ddr3_model, trace)

    def test_lenient_mode_still_prices(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(0.0, Command.ACT, bank=0),
            TraceCommand(timing.trcd, Command.WR, bank=0),
            TraceCommand(timing.trcd + 1e-9, Command.PRE, bank=0),
        ]
        result = evaluate_trace(ddr3_model, trace, strict=False)
        assert result.counts[Command.PRE] == 1


class TestSchedulerRespectsRecovery:
    def test_write_then_conflict_waits_for_twr(self, ddr3_device):
        timing = ddr3_device.timing
        spec = ddr3_device.spec
        scheduler = OpenPageScheduler(ddr3_device)
        scheduler.add(Request(bank=0, row=1, is_write=True))
        scheduler.add(Request(bank=0, row=2))  # row conflict
        trace = scheduler.finalize()
        write = [e for e in trace if e.command is Command.WR][0]
        precharge = [e for e in trace if e.command is Command.PRE][0]
        burst = spec.burst_length / spec.datarate
        assert precharge.time >= write.time + burst + timing.twr \
            - 1e-12

    def test_write_heavy_closed_page_legal(self, ddr3_device,
                                           ddr3_model):
        scheduler = OpenPageScheduler(ddr3_device, policy="closed")
        scheduler.extend(Request(bank=index % 8, row=index,
                                 is_write=True)
                         for index in range(60))
        result = evaluate_trace(ddr3_model, scheduler.finalize(),
                                strict=True)
        assert result.counts[Command.WR] == 60

    def test_timing_validation(self):
        from repro.description import TimingParameters
        with pytest.raises(DescriptionError):
            TimingParameters(trc=50e-9, twr=0.0)
