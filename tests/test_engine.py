"""Engine package: fingerprints, model cache, sessions, variants."""

import pytest

from repro.analysis.sensitivity import PARAMETERS, sensitivity
from repro.core.idd import idd7_mixed
from repro.devices import build_device, ddr3_2g_55nm
from repro.engine import (
    EvaluationSession,
    ModelCache,
    Variant,
    canonical_form,
    ensure_session,
    evaluate_many,
    fingerprint,
    scaling,
)
from repro.errors import ModelError

#: One dotted path per Table-I parameter group, to prove each group
#: participates in the cache key.
TABLE_I_PATHS = [
    "technology.c_bitline",
    "technology.c_cell",
    "technology.c_wire_signal",
    "technology.tox_logic",
    "technology.cj_logic",
    "technology.w_sa_n",
    "technology.w_swd_n",
    "technology.w_cell",
    "voltages.vint",
    "voltages.vpp",
    "voltages.vbl",
    "constant_current",
]


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert fingerprint(ddr3_2g_55nm()) == fingerprint(ddr3_2g_55nm())

    def test_stable_across_nodes(self):
        first = {node: fingerprint(build_device(node))
                 for node in (170, 55, 18)}
        second = {node: fingerprint(build_device(node))
                  for node in (170, 55, 18)}
        assert first == second

    def test_distinct_devices_differ(self):
        keys = {fingerprint(build_device(node))
                for node in (170, 110, 55, 18)}
        assert len(keys) == 4

    @pytest.mark.parametrize("path", TABLE_I_PATHS)
    def test_any_table_i_change_changes_key(self, ddr3_device, path):
        perturbed = ddr3_device.scale_path(path, 1.01)
        assert fingerprint(perturbed) != fingerprint(ddr3_device)

    @pytest.mark.parametrize("parameter", PARAMETERS,
                             ids=lambda parameter: parameter.name)
    def test_every_sensitivity_parameter_changes_key(self, ddr3_device,
                                                     parameter):
        perturbed = parameter.apply(ddr3_device, 1.05)
        assert fingerprint(perturbed) != fingerprint(ddr3_device)

    def test_logic_block_change_changes_key(self, ddr3_device):
        perturbed = Variant().scaled_logic("n_gates", 2.0)(ddr3_device)
        assert fingerprint(perturbed) != fingerprint(ddr3_device)

    def test_canonical_form_tags_types(self):
        assert canonical_form(1) != canonical_form(1.0)
        assert canonical_form(1) != canonical_form("1")
        assert canonical_form(True) != canonical_form(1)
        assert canonical_form(None) != canonical_form("")

    def test_canonical_form_sorts_mappings(self):
        assert canonical_form({"a": 1, "b": 2}) == \
            canonical_form({"b": 2, "a": 1})

    def test_unfingerprintable_value_raises(self):
        with pytest.raises(ModelError):
            canonical_form(object())


class TestModelCache:
    def test_hit_returns_identical_model_and_events(self, ddr3_device):
        cache = ModelCache()
        first = cache.model(ddr3_device)
        again = cache.model(ddr3_device)
        assert again is first
        assert again.events is first.events

    def test_equal_value_different_object_hits(self):
        cache = ModelCache()
        first = cache.model(ddr3_2g_55nm())
        again = cache.model(ddr3_2g_55nm())
        assert again is first
        assert cache.stats().hits == 1

    def test_lru_eviction_at_capacity(self):
        cache = ModelCache(capacity=2)
        devices = [build_device(node) for node in (170, 110, 55)]
        for device in devices:
            cache.model(device)
        stats = cache.stats()
        assert stats.size == 2
        assert stats.evictions == 1
        # 170 nm was least recently used: rebuilding it must miss.
        cache.model(devices[0])
        assert cache.stats().misses == 4

    def test_lru_order_refreshes_on_hit(self):
        cache = ModelCache(capacity=2)
        old, mid, new = [build_device(node) for node in (170, 110, 55)]
        cache.model(old)
        cache.model(mid)
        cache.model(old)          # refresh: now `mid` is the LRU entry
        cache.model(new)          # evicts `mid`
        kept = cache.model(old)
        assert cache.stats().hits == 2
        assert kept is not None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ModelError):
            ModelCache(capacity=0)

    def test_clear_keeps_counters(self, ddr3_device):
        cache = ModelCache()
        cache.model(ddr3_device)
        cache.clear()
        stats = cache.stats()
        assert stats.size == 0
        assert stats.misses == 1

    def test_stats_snapshot_fields(self, ddr3_device):
        cache = ModelCache()
        cache.model(ddr3_device)
        cache.model(ddr3_device)
        stats = cache.stats()
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        assert stats.build_seconds > 0.0
        assert "hit-rate=50.0%" in str(stats)


class TestEvaluationSession:
    def test_evaluate_matches_direct_model(self, ddr3_device,
                                           ddr3_model):
        session = EvaluationSession()
        result = session.evaluate(ddr3_device)
        assert result.power == ddr3_model.pattern_power(None).power

    def test_map_parallel_equals_serial_bit_for_bit(self, ddr3_device):
        devices = [ddr3_device.scale_path("technology.c_bitline",
                                          1.0 + 0.01 * step)
                   for step in range(8)]
        serial = EvaluationSession().map(
            devices, lambda model: idd7_mixed(model).power)
        threaded = EvaluationSession().map(
            devices, lambda model: idd7_mixed(model).power, jobs=2)
        assert threaded == serial

    def test_map_rejects_nonpositive_jobs(self, ddr3_device):
        session = EvaluationSession()
        with pytest.raises(ModelError):
            session.map([ddr3_device], lambda model: model, jobs=0)

    def test_map_devices_hands_descriptions(self, ddr3_device):
        session = EvaluationSession()
        names = session.map_devices([ddr3_device],
                                    lambda device: device.name)
        assert names == [ddr3_device.name]

    def test_repeated_sweep_has_nonzero_hit_rate(self, ddr3_device):
        session = EvaluationSession()
        sensitivity(ddr3_device, session=session)
        sensitivity(ddr3_device, session=session)
        assert session.stats.hit_rate > 0.0

    def test_evaluate_many_one_shot(self, ddr3_device):
        powers = evaluate_many([ddr3_device],
                               lambda model: idd7_mixed(model).power)
        assert powers[0] > 0.0

    def test_ensure_session_passthrough(self):
        session = EvaluationSession()
        assert ensure_session(session) is session
        assert ensure_session(None) is not session


class TestVariant:
    def test_scaling_matches_scale_path(self, ddr3_device):
        variant = scaling(["technology.c_bitline"], 1.2)
        by_hand = ddr3_device.scale_path("technology.c_bitline", 1.2)
        assert variant(ddr3_device) == by_hand

    def test_deltas_apply_in_order(self, ddr3_device):
        variant = (Variant().scaled("voltages.vdd", 2.0)
                   .scaled("voltages.vdd", 0.5))
        assert variant(ddr3_device).voltages.vdd == \
            ddr3_device.voltages.vdd

    def test_logic_clamps(self, ddr3_device):
        dense = Variant().scaled_logic("layout_density", 50.0)
        for block in dense(ddr3_device).logic_blocks:
            assert block.layout_density <= 1.0
        tiny = Variant().scaled_logic("n_gates", 1e-9)
        for block in tiny(ddr3_device).logic_blocks:
            assert block.n_gates == 1

    def test_merged_and_labels(self):
        left = scaling(["voltages.vdd"], 1.1, label="vdd")
        right = scaling(["voltages.vpp"], 1.1, label="vpp")
        both = left.merged(right)
        assert both.label == "vdd+vpp"
        assert len(both.deltas) == 2
        assert both.labelled("slow").label == "slow"

    def test_empty_variant_is_falsy_identity(self, ddr3_device):
        empty = Variant()
        assert not empty
        assert empty(ddr3_device) == ddr3_device
