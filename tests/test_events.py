"""Tests for charge events and the per-operation energy accounting."""

import pytest

from repro.core.events import ChargeEvent, Component, filter_events
from repro.core.operations import (
    EnergyBreakdown,
    background_rate,
    command_activity_time,
    firings_per_command,
)
from repro.description import Command, Rail
from repro.description.signaling import Trigger
from repro.errors import ModelError


def bitline_event(**overrides):
    values = dict(
        name="bitline swing",
        component=Component.BITLINE,
        capacitance=100e-15,
        swing=0.6,
        rail=Rail.VBL,
        count=16384.0,
        trigger=Trigger.PER_ROW_OP,
        operations=frozenset({Command.ACT}),
    )
    values.update(overrides)
    return ChargeEvent(**values)


def clock_event(**overrides):
    values = dict(
        name="clock tree",
        component=Component.CLOCK,
        capacitance=1e-12,
        swing=1.4,
        rail=Rail.VINT,
        count=2.0,
        trigger=Trigger.PER_CTRL_CLOCK,
        operations=frozenset(),
    )
    values.update(overrides)
    return ChargeEvent(**values)


class TestChargeEvent:
    def test_charge_per_firing(self):
        event = bitline_event()
        assert event.charge_per_firing == pytest.approx(
            16384 * 100e-15 * 0.6
        )

    def test_background_flag(self):
        assert clock_event().is_background
        assert not bitline_event().is_background

    def test_clocked_flag(self):
        assert clock_event().is_clocked
        assert not bitline_event().is_clocked

    def test_rejects_negative_capacitance(self):
        with pytest.raises(ModelError):
            bitline_event(capacitance=-1.0)

    def test_rejects_command_trigger_without_operations(self):
        with pytest.raises(ModelError):
            bitline_event(operations=frozenset())

    def test_string_coercion(self):
        event = bitline_event(component="bitline", rail="vbl",
                              trigger="row_op", operations={"act"})
        assert event.component is Component.BITLINE
        assert Command.ACT in event.operations

    def test_scaled_copy(self):
        event = bitline_event().scaled(count=8192.0)
        assert event.count == 8192.0
        assert event.capacitance == pytest.approx(100e-15)

    def test_filter_by_component(self):
        events = [bitline_event(), clock_event()]
        selected = filter_events(events, component=Component.CLOCK)
        assert len(selected) == 1
        assert selected[0].name == "clock tree"

    def test_filter_by_operation(self):
        events = [bitline_event(), clock_event()]
        selected = filter_events(events, operation=Command.ACT)
        assert len(selected) == 1


class TestEnergyBreakdown:
    def test_accumulation(self):
        breakdown = EnergyBreakdown()
        breakdown.add(Component.BITLINE, 1.0)
        breakdown.add(Component.BITLINE, 0.5)
        breakdown.add(Component.CLOCK, 2.0)
        assert breakdown.get(Component.BITLINE) == 1.5
        assert breakdown.total == 3.5

    def test_addition_operator(self):
        a = EnergyBreakdown({Component.CLOCK: 1.0})
        b = EnergyBreakdown({Component.CLOCK: 2.0,
                             Component.IO: 1.0})
        merged = a + b
        assert merged.get(Component.CLOCK) == 3.0
        assert merged.get(Component.IO) == 1.0
        # Operands unchanged.
        assert a.get(Component.CLOCK) == 1.0

    def test_scaled(self):
        breakdown = EnergyBreakdown({Component.CLOCK: 2.0})
        assert breakdown.scaled(0.5).get(Component.CLOCK) == 1.0

    def test_share(self):
        breakdown = EnergyBreakdown({Component.CLOCK: 1.0,
                                     Component.IO: 3.0})
        assert breakdown.share(Component.IO) == pytest.approx(0.75)

    def test_share_of_empty(self):
        assert EnergyBreakdown().share(Component.IO) == 0.0

    def test_as_dict_sorted_descending(self):
        breakdown = EnergyBreakdown({Component.CLOCK: 1.0,
                                     Component.IO: 3.0})
        assert list(breakdown.as_dict()) == ["io", "clock"]


class TestFiringSemantics:
    def test_row_op_fires_once_per_command(self, ddr3_device):
        event = bitline_event()
        assert firings_per_command(ddr3_device, event, Command.ACT) == 1.0
        assert firings_per_command(ddr3_device, event, Command.PRE) == 0.0

    def test_access_event_fires_once(self, ddr3_device):
        event = bitline_event(trigger=Trigger.PER_ACCESS,
                              operations=frozenset({Command.RD}))
        assert firings_per_command(ddr3_device, event, Command.RD) == 1.0

    def test_gated_data_clock_event_fires_per_burst_beat(self, ddr3_device):
        # A read burst of 8 beats at 1.6 Gb/s lasts 5 ns = 4 data clocks.
        event = bitline_event(trigger=Trigger.PER_DATA_CLOCK,
                              operations=frozenset({Command.RD}))
        assert firings_per_command(ddr3_device, event,
                                   Command.RD) == pytest.approx(4.0)

    def test_gated_ctrl_clock_event_during_row_op(self, ddr3_device):
        event = bitline_event(trigger=Trigger.PER_CTRL_CLOCK,
                              operations=frozenset({Command.ACT}))
        assert firings_per_command(ddr3_device, event,
                                   Command.ACT) == pytest.approx(1.0)

    def test_command_activity_time(self, ddr3_device):
        burst = command_activity_time(ddr3_device, Command.RD)
        assert burst == pytest.approx(8 / 1.6e9)
        row = command_activity_time(ddr3_device, Command.ACT)
        assert row == pytest.approx(1 / 800e6)

    def test_background_rate(self, ddr3_device):
        assert background_rate(ddr3_device, clock_event()) == pytest.approx(
            800e6
        )

    def test_background_rate_rejects_gated(self, ddr3_device):
        with pytest.raises(ModelError):
            background_rate(ddr3_device, bitline_event())


class TestOperationEnergies:
    def test_activate_dominated_by_array(self, ddr3_model):
        breakdown = ddr3_model.operation_breakdown(Command.ACT)
        array_energy = (breakdown.get(Component.BITLINE)
                        + breakdown.get(Component.SENSE_AMP)
                        + breakdown.get(Component.WORDLINE))
        assert array_energy > 0.5 * breakdown.total

    def test_precharge_cheaper_than_activate(self, ddr3_model):
        # Bitline equalisation is adiabatic: only control lines and row
        # logic toggle at precharge.
        assert (ddr3_model.operation_energy(Command.PRE)
                < 0.5 * ddr3_model.operation_energy(Command.ACT))

    def test_read_dominated_by_datapath_and_logic(self, ddr3_model):
        breakdown = ddr3_model.operation_breakdown(Command.RD)
        moving_data = (breakdown.get(Component.DATAPATH)
                       + breakdown.get(Component.IO)
                       + breakdown.get(Component.COLUMN))
        assert moving_data > 0.7 * breakdown.total

    def test_write_touches_bitlines(self, ddr3_model):
        breakdown = ddr3_model.operation_breakdown(Command.WR)
        assert breakdown.get(Component.BITLINE) > 0

    def test_nop_has_no_operation_energy(self, ddr3_model):
        assert ddr3_model.operation_energy(Command.NOP) == 0.0

    def test_background_includes_constant_current(self, ddr3_model):
        background = ddr3_model.background_breakdown
        expected = (ddr3_model.device.constant_current
                    * ddr3_model.device.voltages.vdd)
        assert background.get(Component.POWER) == pytest.approx(expected)

    def test_energy_table_shape(self, ddr3_model):
        table = ddr3_model.energies.as_table()
        assert set(table) == {"act", "pre", "rd", "wr", "background_mw"}
        assert all(value >= 0 for value in table["act"].values())
