"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DescriptionError,
    DslError,
    DslSyntaxError,
    DslValidationError,
    FloorplanError,
    ModelError,
    ReproError,
    SchemeError,
    TechnologyError,
    UnitError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        UnitError, DslError, DslSyntaxError, DslValidationError,
        DescriptionError, FloorplanError, ModelError, TechnologyError,
        SchemeError,
    ])
    def test_everything_is_a_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unit_error_is_value_error(self):
        assert issubclass(UnitError, ValueError)

    def test_technology_error_is_key_error(self):
        assert issubclass(TechnologyError, KeyError)

    def test_floorplan_error_is_description_error(self):
        assert issubclass(FloorplanError, DescriptionError)

    def test_dsl_errors_specialise_dsl_error(self):
        assert issubclass(DslSyntaxError, DslError)
        assert issubclass(DslValidationError, DslError)


class TestDslErrorFormatting:
    def test_carries_location(self):
        error = DslSyntaxError("bad token", line=7, source="file.dram")
        assert error.line == 7
        assert error.source == "file.dram"
        assert "file.dram:7" in str(error)

    def test_no_location_plain_message(self):
        error = DslSyntaxError("missing section")
        assert str(error) == "missing section"


class TestCatchability:
    def test_library_errors_catchable_as_repro_error(self, ddr3_device):
        with pytest.raises(ReproError):
            ddr3_device.replace_path("voltages.vint", -1.0)
        with pytest.raises(ReproError):
            from repro.units import parse_quantity
            parse_quantity("garbage units")
        with pytest.raises(ReproError):
            from repro.technology import roadmap_entry
            roadmap_entry(123.456)
