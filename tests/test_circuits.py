"""Tests for the circuit-level capacitance models."""

import pytest

from repro.circuits import array, column, constants, logic, wordline
from repro.circuits.devices import (
    buffer_input_load,
    buffer_output_load,
    buffer_total_load,
)
from repro.circuits import signaling as signaling_circuits
from repro.core.events import Component
from repro.description import Command, Rail
from repro.floorplan import FloorplanGeometry


@pytest.fixture(scope="module")
def geometry(ddr3_device):
    return FloorplanGeometry(ddr3_device)


def event_by_name(events, name):
    matches = [event for event in events if event.name == name]
    assert matches, f"no event named {name!r}"
    return matches[0]


class TestBufferLoads:
    def test_zero_widths_no_load(self, ddr3_device):
        assert buffer_total_load(ddr3_device.technology, 0.0, 0.0) == 0.0

    def test_total_is_input_plus_output(self, ddr3_device):
        tech = ddr3_device.technology
        total = buffer_total_load(tech, 2e-6, 4e-6)
        assert total == pytest.approx(
            buffer_input_load(tech, 2e-6, 4e-6)
            + buffer_output_load(tech, 2e-6, 4e-6)
        )

    def test_load_monotone_in_width(self, ddr3_device):
        tech = ddr3_device.technology
        assert (buffer_total_load(tech, 4e-6, 8e-6)
                > buffer_total_load(tech, 2e-6, 4e-6))


class TestArrayEvents:
    def test_bitline_swing_covers_page(self, ddr3_device, geometry):
        events = array.events(ddr3_device, geometry)
        swing = event_by_name(events, "bitline swing")
        assert swing.count == ddr3_device.spec.page_bits
        assert swing.rail is Rail.VBL
        assert swing.swing == pytest.approx(
            ddr3_device.voltages.vbl / 2.0
        )
        assert swing.operations == frozenset({Command.ACT})

    def test_cell_restore_half_the_page(self, ddr3_device, geometry):
        events = array.events(ddr3_device, geometry)
        restore = event_by_name(events, "cell restore")
        assert restore.count == pytest.approx(
            ddr3_device.spec.page_bits * constants.ONES_FRACTION
        )

    def test_equalize_fires_on_precharge(self, ddr3_device, geometry):
        events = array.events(ddr3_device, geometry)
        eq = event_by_name(events, "equalize control lines")
        assert eq.operations == frozenset({Command.PRE})
        assert eq.rail is Rail.VPP

    def test_open_architecture_has_no_mux_lines(self, ddr3_device,
                                                geometry):
        events = array.events(ddr3_device, geometry)
        names = {event.name for event in events}
        assert "bitline mux control lines" not in names

    def test_folded_architecture_adds_mux_lines(self, ddr2_device):
        events = array.events(ddr2_device,
                              FloorplanGeometry(ddr2_device))
        names = {event.name for event in events}
        assert "bitline mux control lines" in names

    def test_transistor_counts(self, ddr3_device, ddr2_device):
        assert array.transistors_per_pair(ddr3_device) == 9   # open
        assert array.transistors_per_pair(ddr2_device) == 11  # folded

    def test_stripe_events_scale_with_swls(self, ddr3_device, geometry):
        events = array.events(ddr3_device, geometry)
        set_lines = event_by_name(events, "sense-amp set lines")
        assert set_lines.count == ddr3_device.swls_per_activate


class TestWordlineEvents:
    def test_local_wordline_count(self, ddr3_device, geometry):
        events = wordline.events(ddr3_device, geometry)
        lwl = event_by_name(events, "local wordlines")
        assert lwl.count == ddr3_device.swls_per_activate
        assert lwl.rail is Rail.VPP
        assert lwl.swing == ddr3_device.voltages.vpp

    def test_local_wordline_capacitance_components(self, ddr3_device):
        tech = ddr3_device.technology
        arr = ddr3_device.floorplan.array
        cap = wordline.local_wordline_capacitance(ddr3_device)
        gate_only = arr.bits_per_swl * tech.cell_gate_cap()
        # The full load exceeds the cell gates alone (wire + coupling +
        # driver junctions) but stays the same order of magnitude.
        assert gate_only < cap < 20 * gate_only

    def test_master_wordline_per_block(self, ddr3_device, sdr_device,
                                       geometry):
        events = wordline.events(ddr3_device, geometry)
        mwl = event_by_name(events, "master wordline")
        assert mwl.count == 1.0
        sdr_events = wordline.events(sdr_device,
                                     FloorplanGeometry(sdr_device))
        sdr_mwl = event_by_name(sdr_events, "master wordline")
        assert sdr_mwl.count == 2.0  # page split over two blocks

    def test_mwl_capacitance_includes_wire_and_drivers(self, ddr3_device,
                                                       geometry):
        cap = wordline.master_wordline_capacitance(ddr3_device, geometry)
        wire_only = (geometry.array_block.master_wordline_length
                     * ddr3_device.technology.c_wire_mwl)
        assert cap > wire_only

    def test_predecode_uses_vint(self, ddr3_device, geometry):
        events = wordline.events(ddr3_device, geometry)
        predecode = event_by_name(events, "row predecode lines")
        assert predecode.rail is Rail.VINT


class TestColumnEvents:
    def test_csl_count_matches_access(self, ddr3_device, geometry):
        events = column.events(ddr3_device, geometry)
        csl = event_by_name(events, "column select lines")
        assert csl.count == ddr3_device.csls_per_access
        assert csl.operations == frozenset({Command.RD, Command.WR})

    def test_csl_capacitance_scales_with_sharing(self, ddr3_device,
                                                 geometry):
        base = column.csl_capacitance(ddr3_device, geometry)
        shared = ddr3_device.replace_path(
            "floorplan.array.blocks_per_csl", 2
        )
        double = column.csl_capacitance(shared,
                                        FloorplanGeometry(shared))
        assert double == pytest.approx(2 * base)

    def test_master_datalines_per_access_bit(self, ddr3_device, geometry):
        events = column.events(ddr3_device, geometry)
        mdq = event_by_name(events, "master data lines")
        assert mdq.count == ddr3_device.spec.bits_per_access
        assert mdq.component is Component.DATAPATH

    def test_write_flip_only_on_writes(self, ddr3_device, geometry):
        events = column.events(ddr3_device, geometry)
        flip = event_by_name(events, "write bitline flip")
        assert flip.operations == frozenset({Command.WR})
        assert flip.count == pytest.approx(
            ddr3_device.spec.bits_per_access
            * constants.WRITE_FLIP_PROBABILITY
        )
        assert flip.swing == ddr3_device.voltages.vbl


class TestSignalingEvents:
    def test_one_event_per_segment(self, ddr3_device, geometry):
        events = signaling_circuits.events(ddr3_device, geometry)
        segments = sum(len(net.segments) for net in ddr3_device.signaling)
        assert len(events) == segments

    def test_event_capacitance_positive(self, ddr3_device, geometry):
        for event in signaling_circuits.events(ddr3_device, geometry):
            assert event.capacitance > 0

    def test_component_taken_from_net(self, ddr3_device, geometry):
        events = signaling_circuits.events(ddr3_device, geometry)
        clock_events = [event for event in events
                        if event.name.startswith("net ClockTree")]
        assert clock_events
        assert all(event.component is Component.CLOCK
                   for event in clock_events)


class TestLogicEvents:
    def test_one_event_per_block(self, ddr3_device, geometry):
        events = logic.events(ddr3_device, geometry)
        assert len(events) == len(ddr3_device.logic_blocks)

    def test_gate_capacitance_scale(self, ddr3_device):
        # An average peripheral gate switches a few femtofarads.
        block = ddr3_device.logic_block("control")
        cap = logic.gate_capacitance(ddr3_device, block)
        assert 0.5e-15 < cap < 50e-15

    def test_count_is_gates_times_toggle(self, ddr3_device, geometry):
        events = logic.events(ddr3_device, geometry)
        control = event_by_name(events, "logic control")
        block = ddr3_device.logic_block("control")
        assert control.count == pytest.approx(block.n_gates * block.toggle)

    def test_total_block_area_positive(self, ddr3_device):
        area = logic.total_block_area(ddr3_device)
        # Peripheral logic should be a visible but small part of a die.
        assert 0.05e-6 < area < 20e-6  # m² (0.05 to 20 mm²)
