"""Persistent on-disk model cache: reuse, invalidation, corruption."""

import pickle

import pytest

from repro.engine import (
    DiskModelCache,
    EvaluationSession,
    default_cache_dir,
    fingerprint,
    model_code_token,
)
from repro.engine.diskcache import SCHEMA_VERSION


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "model-cache"


class TestToken:
    def test_token_is_stable_within_process(self):
        assert model_code_token() == model_code_token()

    def test_token_is_hex_sha256(self):
        token = model_code_token()
        assert len(token) == 64
        int(token, 16)

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "over"))
        assert default_cache_dir() == tmp_path / "over"

    def test_default_dir_falls_back_to_xdg(self, monkeypatch,
                                           tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro"


class TestRoundTrip:
    def test_store_then_load(self, cache_dir, ddr3_device,
                             ddr3_model):
        disk = DiskModelCache(cache_dir)
        key = fingerprint(ddr3_device)
        assert disk.load(key) is None
        assert disk.store(key, ddr3_model)
        loaded = disk.load(key)
        assert loaded is not None
        assert loaded.pattern_power().power == \
            ddr3_model.pattern_power().power
        assert disk.entry_count() == 1

    def test_atomic_write_leaves_no_staging_files(self, cache_dir,
                                                  ddr3_device,
                                                  ddr3_model):
        disk = DiskModelCache(cache_dir)
        disk.store(fingerprint(ddr3_device), ddr3_model)
        leftovers = list(cache_dir.rglob("*.tmp"))
        assert leftovers == []

    def test_clear_removes_entries(self, cache_dir, ddr3_device,
                                   ddr3_model):
        disk = DiskModelCache(cache_dir)
        disk.store(fingerprint(ddr3_device), ddr3_model)
        disk.clear()
        assert disk.entry_count() == 0


class TestInvalidation:
    def test_token_bump_ignores_stale_entries(self, cache_dir,
                                              ddr3_device,
                                              ddr3_model):
        key = fingerprint(ddr3_device)
        old = DiskModelCache(cache_dir, token="0" * 64)
        assert old.store(key, ddr3_model)
        bumped = DiskModelCache(cache_dir, token="1" * 64)
        assert bumped.load(key) is None
        # The old namespace still answers under its own token.
        assert DiskModelCache(cache_dir, token="0" * 64) \
            .load(key) is not None

    def test_foreign_payload_token_treated_as_miss(self, cache_dir,
                                                   ddr3_device,
                                                   ddr3_model):
        disk = DiskModelCache(cache_dir, token="a" * 64)
        key = fingerprint(ddr3_device)
        disk.store(key, ddr3_model)
        # Rewrite the entry in place with a mismatched inner token,
        # as a different library version sharing the directory would.
        path = disk._path(key)
        payload = {"schema": SCHEMA_VERSION, "token": "b" * 64,
                   "fingerprint": key, "model": ddr3_model}
        path.write_bytes(pickle.dumps(payload))
        assert disk.load(key) is None
        assert disk.corrupt_entries == 1


class TestCorruptionTolerance:
    def test_truncated_entry_degrades_to_miss(self, cache_dir,
                                              ddr3_device,
                                              ddr3_model):
        disk = DiskModelCache(cache_dir)
        key = fingerprint(ddr3_device)
        disk.store(key, ddr3_model)
        disk._path(key).write_bytes(b"\x80\x04 definitely not pickle")
        assert disk.load(key) is None
        assert disk.corrupt_entries == 1

    def test_corrupt_entry_rebuilds_cold(self, cache_dir,
                                         ddr3_device):
        warm = EvaluationSession(cache_dir=cache_dir)
        warm.model(ddr3_device)
        key = fingerprint(ddr3_device)
        path = warm.cache.disk._path(key)
        path.write_bytes(b"garbage")
        rebuilt = EvaluationSession(cache_dir=cache_dir)
        model = rebuilt.model(ddr3_device)
        assert model.pattern_power().power > 0
        stats = rebuilt.stats
        assert stats.misses == 1
        assert stats.disk_corrupt == 1
        # The rebuild repaired the entry for the next process.
        assert stats.disk_writes == 1


class TestSessionIntegration:
    def test_second_session_is_all_disk_hits(self, cache_dir,
                                             ddr3_device):
        devices = [ddr3_device.scale_path("technology.c_bitline",
                                          1.0 + 0.01 * step)
                   for step in range(5)]
        cold = EvaluationSession(cache_dir=cache_dir)
        for device in devices:
            cold.model(device)
        assert cold.stats.misses == 5
        assert cold.stats.disk_writes == 5

        warm = EvaluationSession(cache_dir=cache_dir)
        for device in devices:
            warm.model(device)
        stats = warm.stats
        assert stats.misses == 0
        assert stats.disk_hits == 5
        assert stats.hit_rate == 1.0

    def test_disk_hit_results_equal_cold_build(self, cache_dir,
                                               ddr3_device):
        cold = EvaluationSession(cache_dir=cache_dir)
        cold_power = cold.model(ddr3_device).pattern_power().power
        warm = EvaluationSession(cache_dir=cache_dir)
        warm_power = warm.model(ddr3_device).pattern_power().power
        assert warm_power == cold_power

    def test_no_disk_counters_without_cache_dir(self, ddr3_device):
        session = EvaluationSession()
        session.model(ddr3_device)
        stats = session.stats
        assert stats.disk_hits == 0
        assert stats.disk_misses == 0
        assert stats.disk_writes == 0
        assert "disk[" not in str(stats)

    def test_disk_counters_render_in_stats_line(self, cache_dir,
                                                ddr3_device):
        session = EvaluationSession(cache_dir=cache_dir)
        session.model(ddr3_device)
        assert "disk[hits=0 misses=1 writes=1" in str(session.stats)

    def test_stats_delta_isolates_one_sweep(self, cache_dir,
                                            ddr3_device):
        session = EvaluationSession(cache_dir=cache_dir)
        session.model(ddr3_device)
        before = session.stats
        session.model(ddr3_device)
        delta = session.stats.delta(before)
        assert delta.hits == 1
        assert delta.misses == 0
        assert delta.disk_writes == 0


class _UnpicklableModel:
    """A model stand-in whose serialisation always fails mid-dump."""

    def __reduce__(self):
        raise pickle.PicklingError("refuses to pickle")


class TestStoreFailureContract:
    def test_unpicklable_model_returns_false(self, cache_dir):
        # Regression: store() once caught only OSError, so a
        # PicklingError raised mid-dump escaped to the caller and
        # leaked the staging file.
        disk = DiskModelCache(cache_dir)
        assert disk.store("deadbeef" * 8, _UnpicklableModel()) is False

    def test_unpicklable_model_leaks_no_staging_file(self, cache_dir):
        disk = DiskModelCache(cache_dir)
        disk.store("deadbeef" * 8, _UnpicklableModel())
        assert list(cache_dir.rglob("*.tmp")) == []
        assert disk.entry_count() == 0

    def test_failed_store_reads_back_as_miss(self, cache_dir):
        disk = DiskModelCache(cache_dir)
        key = "deadbeef" * 8
        disk.store(key, _UnpicklableModel())
        assert disk.load(key) is None

    def test_store_still_false_on_io_error(self, cache_dir,
                                           ddr3_device, ddr3_model,
                                           monkeypatch):
        disk = DiskModelCache(cache_dir)
        monkeypatch.setattr("os.replace", _raise_os_error)
        assert disk.store(fingerprint(ddr3_device),
                          ddr3_model) is False
        assert list(cache_dir.rglob("*.tmp")) == []


def _raise_os_error(*args, **kwargs):
    raise OSError("disk full")


class TestConcurrentAccess:
    def test_parallel_store_and_load_of_one_key(self, cache_dir,
                                                ddr3_device,
                                                ddr3_model):
        # Writers race os.replace on the same entry while readers
        # load it; the atomic-write contract promises every reader a
        # complete entry or a clean miss, never a torn file or an
        # exception.
        from concurrent.futures import ThreadPoolExecutor

        disk = DiskModelCache(cache_dir)
        key = fingerprint(ddr3_device)
        expected = ddr3_model.pattern_power().power

        def worker(index):
            outcomes = []
            for _ in range(5):
                if index % 2 == 0:
                    outcomes.append(disk.store(key, ddr3_model))
                else:
                    outcomes.append(disk.load(key))
            return outcomes

        with ThreadPoolExecutor(max_workers=8) as pool:
            rounds = list(pool.map(worker, range(8)))

        for index, outcomes in enumerate(rounds):
            for outcome in outcomes:
                if index % 2 == 0:
                    assert outcome is True
                else:
                    assert outcome is None or \
                        outcome.pattern_power().power == expected
        assert disk.corrupt_entries == 0
        assert disk.entry_count() == 1
        assert list(cache_dir.rglob("*.tmp")) == []
        assert disk.load(key).pattern_power().power == expected
