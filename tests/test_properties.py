"""Property-based tests on core model invariants (hypothesis).

These encode the physics the model must never violate: power is monotone
and homogeneous in capacitances, superlinear in rail voltages, additive
over pattern counts, and invariant under event-list permutation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import DramPowerModel
from repro.core.idd import idd7_counts
from repro.description import Command, Pattern
from repro.devices import build_device

# One shared device/model per module keeps hypothesis fast.
DEVICE = build_device(55)
MODEL = DramPowerModel(DEVICE)
BASE_POWER = MODEL.pattern_power().power

scale_factors = st.floats(min_value=0.3, max_value=3.0,
                          allow_nan=False, allow_infinity=False)


@settings(max_examples=25, deadline=None)
@given(scale_factors)
def test_power_monotone_in_bitline_capacitance(factor):
    scaled = DEVICE.scale_path("technology.c_bitline", factor)
    power = DramPowerModel(scaled).pattern_power().power
    if factor > 1.0:
        assert power >= BASE_POWER
    elif factor < 1.0:
        assert power <= BASE_POWER


@settings(max_examples=25, deadline=None)
@given(scale_factors)
def test_power_monotone_in_wire_capacitance(factor):
    scaled = DEVICE.scale_path("technology.c_wire_signal", factor)
    power = DramPowerModel(scaled).pattern_power().power
    assert (power - BASE_POWER) * (factor - 1.0) >= 0


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.7, max_value=1.0))
def test_power_superlinear_in_vint(factor):
    # At fixed generator efficiency, rail energy goes like V²: scaling
    # Vint down by f must scale the Vint-rail share by ≤ f.
    scaled = DEVICE.replace_path("voltages.vint",
                                 DEVICE.voltages.vint * factor)
    power = DramPowerModel(scaled).pattern_power().power
    assert power <= BASE_POWER
    if factor < 0.999:
        # Strictly better than linear on the affected share.
        assert power < BASE_POWER


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=0, max_value=20),
       st.integers(min_value=0, max_value=20))
def test_counts_power_additive(rows, reads, writes):
    """background + Σ count·E/T exactly, for arbitrary mixes."""
    duration = 1e-6
    counts = {Command.ACT: float(rows), Command.PRE: float(rows),
              Command.RD: float(reads), Command.WR: float(writes)}
    result = MODEL.counts_power(counts, duration)
    expected = MODEL.background_power
    expected += rows * MODEL.operation_energy(Command.ACT) / duration
    expected += rows * MODEL.operation_energy(Command.PRE) / duration
    expected += reads * MODEL.operation_energy(Command.RD) / duration
    expected += writes * MODEL.operation_energy(Command.WR) / duration
    assert result.power == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.5, max_value=2.0))
def test_counts_power_scale_invariance(time_scale):
    """Scaling counts and duration together leaves power unchanged."""
    counts, window = idd7_counts(MODEL)
    base = MODEL.counts_power(counts, window).power
    scaled_counts = {command: count * time_scale
                     for command, count in counts.items()}
    scaled = MODEL.counts_power(scaled_counts, window * time_scale).power
    assert scaled == pytest.approx(base)


@settings(max_examples=20, deadline=None)
@given(st.permutations(list(range(8))))
def test_pattern_power_order_invariant(order):
    """Command order within a loop does not change average power."""
    base_cmds = [Command.ACT, Command.PRE, Command.RD, Command.WR,
                 Command.NOP, Command.NOP, Command.NOP, Command.NOP]
    shuffled = Pattern(tuple(base_cmds[index] for index in order))
    reference = Pattern(tuple(base_cmds))
    assert MODEL.pattern_power(shuffled).power == pytest.approx(
        MODEL.pattern_power(reference).power
    )


@settings(max_examples=15, deadline=None)
@given(st.sampled_from([4, 8, 16, 32]))
def test_idd4_grows_with_io_width(io_width):
    from repro.core.idd import idd4r
    device = build_device(55, io_width=io_width)
    narrow = build_device(55, io_width=4)
    wide_current = idd4r(DramPowerModel(device)).current
    narrow_current = idd4r(DramPowerModel(narrow)).current
    assert wide_current >= narrow_current * 0.999


@settings(max_examples=15, deadline=None)
@given(st.permutations(["bitline swing", "cell restore",
                        "local wordlines"]))
def test_event_order_irrelevant(names):
    """Permuting the event list leaves every result unchanged."""
    ordered = sorted(
        MODEL.events,
        key=lambda event: (names.index(event.name)
                           if event.name in names else -1),
    )
    permuted = DramPowerModel(DEVICE, events=tuple(ordered))
    assert permuted.pattern_power().power == pytest.approx(BASE_POWER)


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.25, max_value=1.0))
def test_activation_scaling_bounds_act_energy(fraction):
    """Scaling activate-array event counts by f scales the array share
    of ACT energy by exactly f, and never increases anything."""
    from repro.schemes.library import _scale_activation
    events = _scale_activation(MODEL.events, fraction)
    model = DramPowerModel(DEVICE, events=events)
    base_act = MODEL.operation_energy(Command.ACT)
    new_act = model.operation_energy(Command.ACT)
    assert new_act <= base_act * 1.0000001
    assert new_act >= base_act * fraction * 0.999


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=1e-9, max_value=1e-3))
def test_background_power_duration_independent(duration):
    result = MODEL.counts_power({}, duration)
    assert result.power == pytest.approx(MODEL.background_power)
