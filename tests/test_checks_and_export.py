"""Tests for the feasibility checker, data exporters and event reports."""

import csv
import json

import pytest

from repro import Command, DramPowerModel
from repro.analysis import (
    check_device,
    export_all,
    export_schemes,
    export_sensitivity,
    export_trends,
    export_verification,
    is_feasible,
)
from repro.devices import build_device


class TestChecks:
    def test_calibrated_device_is_feasible(self, ddr3_device):
        assert is_feasible(ddr3_device)

    def test_all_checks_present(self, ddr3_device):
        checks = {result.check for result in check_device(ddr3_device)}
        assert checks == {"sa_stripe_share", "swd_stripe_share",
                          "array_efficiency", "die_area", "die_aspect",
                          "vpp_headroom"}

    def test_oversized_stripe_flagged(self, ddr3_device):
        bloated = ddr3_device.replace_path(
            "floorplan.array.width_sa_stripe",
            ddr3_device.floorplan.array.width_sa_stripe * 3
        )
        results = {result.check: result
                   for result in check_device(bloated)}
        assert results["sa_stripe_share"].severity == "warning"
        assert not is_feasible(bloated)

    def test_low_vpp_headroom_flagged(self, ddr3_device):
        squeezed = ddr3_device.evolve(
            voltages=ddr3_device.voltages.with_levels(vpp=1.6)
        )
        results = {result.check: result
                   for result in check_device(squeezed)}
        assert results["vpp_headroom"].severity == "warning"

    def test_generation_sweep_mostly_feasible(self):
        # Every roadmap device passes the stripe-share and headroom
        # checks; die-area/aspect may warn on extreme nodes.
        for node in (170, 90, 55, 31, 18):
            results = {result.check: result
                       for result in check_device(build_device(node))}
            assert results["sa_stripe_share"].is_ok, node
            assert results["vpp_headroom"].is_ok, node


class TestEventReports:
    def test_activate_dominated_by_bitline_swing(self, ddr3_model):
        entries = ddr3_model.event_energies(Command.ACT)
        assert entries[0][0].name == "bitline swing"
        energies = [energy for _, energy in entries]
        assert energies == sorted(energies, reverse=True)

    def test_event_energies_sum_to_operation(self, ddr3_model):
        total = sum(energy for _, energy in
                    ddr3_model.event_energies(Command.RD))
        assert total == pytest.approx(
            ddr3_model.operation_energy(Command.RD)
        )

    def test_background_event_powers_sum(self, ddr3_model):
        total = sum(power for _, power in
                    ddr3_model.background_event_powers())
        constant = (ddr3_model.device.constant_current
                    * ddr3_model.device.voltages.vdd)
        assert total + constant == pytest.approx(
            ddr3_model.background_power
        )


class TestExports:
    def test_verification_csv(self, tmp_path):
        path = export_verification(tmp_path / "verify.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 72
        assert {row["figure"] for row in rows} == {"fig8", "fig9"}
        assert all(float(row["best_model_ma"]) > 0 for row in rows)

    def test_sensitivity_csv(self, tmp_path):
        path = export_sensitivity(tmp_path / "sens.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        devices = {row["device"] for row in rows}
        assert len(devices) == 3
        vint_rows = [row for row in rows
                     if row["parameter"] == "Internal voltage Vint"]
        assert len(vint_rows) == 3

    def test_trends_json(self, tmp_path):
        path = export_trends(tmp_path / "trends.json")
        with open(path) as handle:
            document = json.load(handle)
        assert len(document["figure13_energy"]) == 14
        energies = [point["energy_idd7_pj"]
                    for point in document["figure13_energy"]]
        assert all(a > b for a, b in zip(energies, energies[1:]))
        assert "figure11_voltages" in document
        assert "section4b_power_shift" in document

    def test_schemes_csv(self, tmp_path):
        path = export_schemes(tmp_path / "schemes.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 8
        assert all(float(row["power_saving"]) > 0 for row in rows)

    def test_export_all_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "out"
        paths = export_all(target)
        assert len(paths) == 4
        assert all(path.exists() for path in paths)
