"""Tests for DDR4/DDR5 bank-group timing (tRRD_S vs tRRD_L)."""

import pytest

from repro import DramPowerModel
from repro.core.trace import TraceCommand, TraceError, evaluate_trace
from repro.description import Command
from repro.devices import build_device
from repro.errors import DescriptionError
from repro.workloads import OpenPageScheduler, Request, random_trace


@pytest.fixture(scope="module")
def ddr4_device():
    return build_device(31)  # 8G DDR4-3200 x16: 16 banks, 4 groups


@pytest.fixture(scope="module")
def ddr4_model(ddr4_device):
    return DramPowerModel(ddr4_device)


class TestSpecification:
    def test_ddr4_has_four_groups(self, ddr4_device):
        assert ddr4_device.spec.bank_groups == 4
        assert ddr4_device.spec.banks_per_group == 4

    def test_ddr5_has_eight_groups(self):
        device = build_device(18)
        assert device.spec.bank_groups == 8

    def test_ddr3_has_no_groups(self, ddr3_device):
        assert ddr3_device.spec.bank_groups == 1
        assert ddr3_device.timing.trrd_l == ddr3_device.timing.trrd

    def test_group_mapping(self, ddr4_device):
        spec = ddr4_device.spec
        assert spec.bank_group_of(0) == 0
        assert spec.bank_group_of(3) == 0
        assert spec.bank_group_of(4) == 1
        assert spec.bank_group_of(15) == 3

    def test_groups_must_divide_banks(self, ddr3_device):
        with pytest.raises(DescriptionError):
            ddr3_device.replace_path("spec.bank_groups", 3)

    def test_trrd_l_not_shorter_than_trrd(self, ddr3_device):
        with pytest.raises(DescriptionError):
            ddr3_device.replace_path("timing.trrd_l",
                                     ddr3_device.timing.trrd / 2)

    def test_ddr4_trrd_l_longer(self, ddr4_device):
        assert ddr4_device.timing.trrd_l > ddr4_device.timing.trrd


class TestTraceChecking:
    def test_same_group_fast_pair_rejected(self, ddr4_model):
        timing = ddr4_model.device.timing
        # Banks 0 and 1 share group 0: spacing between tRRD and tRRD_L
        # violates tRRD_L.
        spacing = (timing.trrd + timing.trrd_l) / 2
        trace = [
            TraceCommand(0.0, Command.ACT, bank=0),
            TraceCommand(spacing, Command.ACT, bank=1),
        ]
        with pytest.raises(TraceError, match="tRRD_L"):
            evaluate_trace(ddr4_model, trace)

    def test_cross_group_fast_pair_accepted(self, ddr4_model):
        timing = ddr4_model.device.timing
        spacing = (timing.trrd + timing.trrd_l) / 2
        trace = [
            TraceCommand(0.0, Command.ACT, bank=0),
            TraceCommand(spacing, Command.ACT, bank=4),  # group 1
        ]
        result = evaluate_trace(ddr4_model, trace)
        assert result.counts[Command.ACT] == 2

    def test_same_group_slow_pair_accepted(self, ddr4_model):
        timing = ddr4_model.device.timing
        trace = [
            TraceCommand(0.0, Command.ACT, bank=0),
            TraceCommand(timing.trrd_l, Command.ACT, bank=1),
        ]
        result = evaluate_trace(ddr4_model, trace)
        assert result.counts[Command.ACT] == 2


class TestScheduler:
    def test_scheduler_respects_trrd_l(self, ddr4_device):
        scheduler = OpenPageScheduler(ddr4_device)
        scheduler.extend([Request(0, 1), Request(1, 1)])  # same group
        trace = scheduler.finalize()
        acts = [entry.time for entry in trace
                if entry.command is Command.ACT]
        assert acts[1] - acts[0] >= ddr4_device.timing.trrd_l - 1e-12

    def test_cross_group_schedule_still_legal(self, ddr4_device,
                                              ddr4_model):
        # In the greedy in-order scheduler the tRCD wait of the previous
        # request always exceeds tRRD_L, so the group distinction binds
        # in the strict checker (out-of-order controllers), not here —
        # but the produced trace must of course replay cleanly.
        scheduler = OpenPageScheduler(ddr4_device)
        scheduler.extend([Request(0, 1), Request(4, 1)])  # groups 0, 1
        trace = scheduler.finalize()
        acts = [entry.time for entry in trace
                if entry.command is Command.ACT]
        assert acts[1] - acts[0] >= ddr4_device.timing.trrd - 1e-12
        evaluate_trace(ddr4_model, trace, strict=True)

    def test_random_ddr4_traces_stay_legal(self, ddr4_device,
                                           ddr4_model):
        for seed in (1, 2, 3):
            trace = random_trace(ddr4_device, 400, row_hit_rate=0.2,
                                 seed=seed)
            result = evaluate_trace(ddr4_model, trace, strict=True)
            assert result.counts[Command.ACT] > 0


class TestSerialization:
    def test_dsl_round_trips_groups(self, ddr4_device):
        from repro.dsl import dumps, loads
        restored = loads(dumps(ddr4_device))
        assert restored.spec.bank_groups == 4
        assert restored.timing.trrd_l == pytest.approx(
            ddr4_device.timing.trrd_l)

    def test_json_round_trips_groups(self, ddr4_device):
        from repro.description.jsonio import dumps_json, loads_json
        restored = loads_json(dumps_json(ddr4_device))
        assert restored.spec.bank_groups == 4
        assert restored.timing == ddr4_device.timing
