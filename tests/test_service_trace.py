"""The ``POST /trace`` endpoint: JSON mode, raw chunked uploads."""

import gzip
import threading

import pytest

from repro.client import ServiceClient
from repro.core.trace import evaluate_trace
from repro.devices import build_device
from repro.engine import EvaluationSession
from repro.errors import ServiceError
from repro.service import create_service
from repro.service.tracing import (MIN_SNAPSHOT_EVERY,
                                   parse_trace_payload,
                                   parse_trace_query, trace_payload,
                                   trace_stream_payload)
from repro.trace import (DEFAULT_CLOCK, AddressDecoder,
                         commands_from_records, iter_records)
from repro import DramPowerModel


@pytest.fixture()
def service():
    svc = create_service(host="127.0.0.1", port=0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=5)
    assert not thread.is_alive()


@pytest.fixture()
def client(service):
    return ServiceClient(f"http://127.0.0.1:{service.server_port}")


def k6_text(transactions=3000):
    """A deterministic k6 trace with reads, writes and one refresh."""
    lines = []
    for i in range(transactions):
        op = "P_MEM_WR" if i % 3 == 0 else "P_MEM_RD"
        lines.append(f"0x{(i * 64) % (1 << 22):X} {op} {i * 16}")
    lines.append(f"0x0 REF {transactions * 16}")
    return "\n".join(lines) + "\n"


def local_result(text, node=55):
    """The library-side evaluation the service must match exactly."""
    device = build_device(node)
    model = DramPowerModel(device)
    decoder = AddressDecoder.from_device(device)
    records = iter_records(iter(text.splitlines()), "k6")
    commands = commands_from_records(records, decoder, DEFAULT_CLOCK)
    return evaluate_trace(model, commands, strict=False)


class TestQueryParsing:
    def test_defaults(self):
        request = parse_trace_query({})
        assert request.fmt == "k6"
        assert request.strict is False
        assert request.clock == DEFAULT_CLOCK

    def test_full_query(self):
        request = parse_trace_query({
            "node": ["55"], "io_width": ["8"], "format": ["mase"],
            "clock": ["8e8"], "strict": ["true"],
            "snapshot_every": ["5"], "policy": ["bank-row-column"],
            "channel_bits": ["1"], "rank_bits": ["2"],
            "offset_bits": ["3"],
        })
        assert request.device_payload == {"node": 55, "io_width": 8}
        assert request.fmt == "mase"
        assert request.clock == 8e8
        assert request.strict is True
        assert request.snapshot_every == MIN_SNAPSHOT_EVERY  # floor
        assert request.policy == "bank-row-column"
        assert (request.channel_bits, request.rank_bits,
                request.offset_bits) == (1, 2, 3)

    def test_unknown_key_rejected(self):
        with pytest.raises(ServiceError, match="bogus"):
            parse_trace_query({"bogus": ["1"]})

    def test_bad_values_rejected(self):
        with pytest.raises(ServiceError, match="format"):
            parse_trace_query({"format": ["xml"]})
        with pytest.raises(ServiceError, match="policy"):
            parse_trace_query({"policy": ["diagonal"]})
        with pytest.raises(ServiceError, match="clock"):
            parse_trace_query({"clock": ["-1"]})
        with pytest.raises(ServiceError, match="strict"):
            parse_trace_query({"strict": ["maybe"]})


class TestPayloadParsing:
    def test_requires_device_and_text(self):
        with pytest.raises(ServiceError, match="device"):
            parse_trace_payload({"text": "0x0 READ 0"})
        with pytest.raises(ServiceError, match="text"):
            parse_trace_payload({"device": {"node": 55}})

    def test_decoder_block(self):
        request, text = parse_trace_payload({
            "device": {"node": 55},
            "text": "0x0 READ 0",
            "decoder": {"policy": "bank-row-column",
                        "channel_bits": 1},
        })
        assert text == "0x0 READ 0"
        assert request.policy == "bank-row-column"
        assert request.channel_bits == 1


class TestSocketFreeEvaluation:
    def test_buffered_matches_library(self):
        text = k6_text(600)
        session = EvaluationSession()
        body = trace_payload(session, {"device": {"node": 55},
                                       "text": text})
        local = local_result(text)
        assert body["energy_j"] == local.energy
        assert body["duration_s"] == local.duration
        expected_counts = {command.value: count
                           for command, count in local.counts.items()}
        assert body["counts"] == expected_counts
        assert body["row_conflicts"] == local.row_conflicts

    def test_stream_emits_snapshots_then_done(self):
        text = k6_text(2000)  # expands past one snapshot segment
        session = EvaluationSession()
        records = list(trace_stream_payload(session, {
            "device": {"node": 55},
            "text": text,
            "snapshot_every": MIN_SNAPSHOT_EVERY,
        }))
        assert records, "stream produced nothing"
        assert records[-1].get("done") is True
        snapshots = [r for r in records if "snapshot" in r]
        assert snapshots, "no incremental snapshots emitted"
        counts = [r["snapshot"]["commands"] for r in snapshots]
        assert counts == sorted(counts)
        assert records[-1]["count"] >= counts[-1]

    def test_malformed_line_becomes_error_record(self):
        session = EvaluationSession()
        records = list(trace_stream_payload(session, {
            "device": {"node": 55},
            "text": "0x0 READ 0\n0x10 BOGUS 5\n",
        }))
        assert "error" in records[-1]
        assert "BOGUS" in records[-1]["error"]
        assert records[-1]["status"] == 400


class TestJsonMode:
    def test_buffered_over_http(self, client):
        text = k6_text(400)
        body = client.request("POST", "/trace",
                              {"device": {"node": 55}, "text": text})
        local = local_result(text)
        assert body["energy_j"] == local.energy
        assert body["row_hits"] == local.row_hits
        assert body["counts"]["ref"] == 1

    def test_missing_text_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/trace",
                           {"device": {"node": 55}})
        assert excinfo.value.status == 400


class TestRawMode:
    def test_gzipped_chunked_upload_matches_library(self, client):
        text = k6_text(2500)
        blob = gzip.compress(text.encode())
        records = list(client.trace_stream(
            blob, device={"node": 55},
            snapshot_every=MIN_SNAPSHOT_EVERY))
        assert records[-1].get("done") is True
        local = local_result(text)
        final = records[-1]["result"]
        assert final["energy_j"] == local.energy
        assert final["duration_s"] == local.duration
        assert final["row_conflicts"] == local.row_conflicts
        assert any("snapshot" in r for r in records)

    def test_plain_blob_equals_gzipped_blob(self, client):
        text = k6_text(300)
        plain = client.trace(text.encode(), device={"node": 55})
        packed = client.trace(gzip.compress(text.encode()),
                              device={"node": 55})
        assert plain == packed

    def test_file_path_upload(self, client, tmp_path):
        path = tmp_path / "upload.trc.gz"
        text = k6_text(300)
        path.write_bytes(gzip.compress(text.encode()))
        body = client.trace(path, device={"node": 55})
        assert body["energy_j"] == local_result(text).energy

    def test_unknown_query_key_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.trace(b"0x0 READ 0\n", device={"wat": 1})
        assert excinfo.value.status == 400

    def test_malformed_line_raises_from_trace(self, client):
        with pytest.raises(ServiceError, match="BOGUS"):
            client.trace(b"0x0 READ 0\n0x10 BOGUS 5\n",
                         device={"node": 55})


# ----------------------------------------------------------------------
# Concurrent snapshots during an active feed.
# ----------------------------------------------------------------------
class TestConcurrentSnapshot:
    """``snapshot()`` racing ``feed()`` must stay internally
    consistent: every observed aggregate is a valid point-in-time
    view (monotone command count, non-negative monotone energy), and
    the final snapshot still equals one-shot evaluation bit for bit.
    """

    def test_snapshot_during_feed_is_consistent(self):
        text = k6_text(4000)
        device = build_device(55)
        model = DramPowerModel(device)
        decoder = AddressDecoder.from_device(device)
        records = iter_records(iter(text.splitlines()), "k6")
        commands = list(commands_from_records(records, decoder,
                                              DEFAULT_CLOCK))
        from repro.core.trace import TraceAccumulator
        accumulator = TraceAccumulator(model, strict=False)
        done = threading.Event()
        views = []
        errors = []

        def observer():
            try:
                while not done.is_set():
                    result = accumulator.snapshot()
                    views.append((result.counts, result.energy,
                                  result.duration))
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        watcher = threading.Thread(target=observer)
        watcher.start()
        for start in range(0, len(commands), 50):
            accumulator.feed(commands[start:start + 50])
        done.set()
        watcher.join(timeout=30)
        assert not watcher.is_alive()
        assert errors == []
        assert len(views) > 0
        seen = -1
        last_energy = -1.0
        for counts, energy, duration in views:
            total = sum(counts.values())
            assert total >= seen  # commands only accumulate
            seen = total
            assert energy >= 0.0 and duration >= 0.0
            assert energy >= last_energy  # components only add
            last_energy = energy
        # The race disturbed nothing: final equals one-shot.
        final = accumulator.result()
        alone = evaluate_trace(model, iter(commands), strict=False)
        assert final.energy == alone.energy
        assert final.counts == alone.counts

    def test_streamed_snapshots_are_monotone(self, client):
        """In-band snapshots of a streamed upload are consistent."""
        text = k6_text(2000)
        records = list(client.trace_stream(
            text.encode(), device={"node": 55},
            snapshot_every=MIN_SNAPSHOT_EVERY))
        snapshots = [r["snapshot"] for r in records
                     if "snapshot" in r]
        assert len(snapshots) >= 2
        previous_commands = -1
        previous_energy = -1.0
        for snap in snapshots:
            assert snap["commands"] > previous_commands
            assert snap["energy_j"] >= previous_energy
            previous_commands = snap["commands"]
            previous_energy = snap["energy_j"]
        final = records[-1]["result"]
        assert final["energy_j"] == local_result(text).energy


class TestBackendSelection:
    """The ``backend`` knob: query/payload parsing and parity."""

    def test_query_accepts_stream_backends(self):
        for backend in ("auto", "serial", "vector"):
            request = parse_trace_query({"backend": [backend]})
            assert request.backend == backend

    def test_query_rejects_process_backend(self):
        # Sharded process replay re-reads the file per worker; a
        # socket stream cannot be re-read, so the endpoint says no
        # and points at the alternatives.
        with pytest.raises(ServiceError, match="trace.*job"):
            parse_trace_query({"backend": ["process"]})

    def test_query_rejects_unknown_backend(self):
        with pytest.raises(ServiceError, match="quantum"):
            parse_trace_query({"backend": ["quantum"]})

    def test_query_rejects_vector_with_strict(self):
        with pytest.raises(ServiceError, match="strict"):
            parse_trace_query({"backend": ["vector"],
                               "strict": ["true"]})

    def test_payload_backend_parsing(self):
        request, _ = parse_trace_payload({
            "device": {"node": 55}, "text": "0x0 READ 0",
            "backend": "serial"})
        assert request.backend == "serial"
        with pytest.raises(ServiceError, match="backend"):
            parse_trace_payload({"device": {"node": 55},
                                 "text": "0x0 READ 0",
                                 "backend": 7})
        with pytest.raises(ServiceError, match="process"):
            parse_trace_payload({"device": {"node": 55},
                                 "text": "0x0 READ 0",
                                 "backend": "process"})

    def test_serial_backend_matches_default(self):
        """Forcing serial must price identically to the default
        (columnar when numpy is present) path — the endpoint parity
        contract extends across backends."""
        text = k6_text(1500)
        session = EvaluationSession()
        default = trace_payload(session, {"device": {"node": 55},
                                          "text": text})
        forced = trace_payload(session, {"device": {"node": 55},
                                         "text": text,
                                         "backend": "serial"})
        assert forced == default

    def test_serial_stream_over_http(self, client):
        text = k6_text(1200)
        records = list(client.trace_stream(
            text.encode(), device={"node": 55},
            snapshot_every=MIN_SNAPSHOT_EVERY, backend="serial"))
        assert records[-1].get("done") is True
        assert records[-1]["result"]["energy_j"] \
            == local_result(text).energy
