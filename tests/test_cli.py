"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestIddCommand:
    def test_default_device(self, capsys):
        out = run(capsys, "idd")
        assert "2G-DDR3-1600-x16-55nm" in out
        assert "idd4r" in out
        assert "idd6" in out

    def test_custom_device(self, capsys):
        out = run(capsys, "idd", "--node", "65", "--interface", "DDR2",
                  "--density", "1Gb", "--width", "8",
                  "--datarate", "800Mbps")
        assert "DDR2" in out
        assert "x8" in out

    def test_from_file(self, capsys, tmp_path, ddr3_device):
        from repro.dsl import dump
        path = tmp_path / "dev.dram"
        dump(ddr3_device, path)
        out = run(capsys, "idd", "--file", str(path))
        assert ddr3_device.name in out


class TestPatternCommand:
    def test_paper_pattern(self, capsys):
        out = run(capsys, "pattern")
        assert "act nop wr nop rd nop pre nop" in out
        assert "energy/bit" in out

    def test_custom_loop(self, capsys):
        out = run(capsys, "pattern", "--loop", "rd nop nop nop")
        assert "rd nop nop nop" in out


class TestAnalysisCommands:
    def test_verify_ddr3_only(self, capsys):
        out = run(capsys, "verify", "ddr3")
        assert "Figure 9" in out
        assert "Figure 8" not in out

    def test_trends(self, capsys):
        out = run(capsys, "trends")
        assert "170" in out
        assert "energy reduction per generation" in out

    def test_sensitivity(self, capsys):
        out = run(capsys, "sensitivity", "--variation", "0.1")
        assert "Internal voltage Vint" in out

    def test_schemes(self, capsys):
        out = run(capsys, "schemes")
        assert "selective-bitline-activation" in out


class TestCornersCommand:
    def test_corner_bands(self, capsys):
        out = run(capsys, "corners")
        assert "spread" in out
        assert "idd4r" in out

    def test_with_monte_carlo(self, capsys):
        out = run(capsys, "corners", "--samples", "5", "--vendor")
        assert "Monte-Carlo" in out
        assert "p95/mean" in out


class TestEventsCommand:
    def test_activate_catalog(self, capsys):
        out = run(capsys, "events", "--operation", "act")
        assert "bitline swing" in out
        assert "total:" in out


class TestInfoCommand:
    def test_device_summary(self, capsys):
        out = run(capsys, "info")
        assert "organisation" in out
        assert "Power breakdown" in out


class TestTraceCommand:
    def test_random_workload(self, capsys):
        out = run(capsys, "trace", "--accesses", "300",
                  "--hit-rate", "0.7")
        assert "row hit rate" in out
        assert "energy/bit" in out

    def test_streaming_workload(self, capsys):
        out = run(capsys, "trace", "--workload", "streaming",
                  "--accesses", "300")
        assert "streaming" in out


class TestCheckCommand:
    def test_feasible_device_exits_zero(self, capsys):
        out = run(capsys, "check", "--node", "55")
        assert "Feasibility" in out
        assert "sa_stripe_share" in out

    def test_infeasible_device_exits_nonzero(self, capsys, tmp_path,
                                             ddr3_device):
        from repro.dsl import dump
        bloated = ddr3_device.replace_path(
            "floorplan.array.width_sa_stripe",
            ddr3_device.floorplan.array.width_sa_stripe * 3,
        )
        path = tmp_path / "bloated.dram"
        dump(bloated, path)
        code = main(["check", "--file", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "warning" in captured.out


class TestExportCommand:
    def test_writes_all_artifacts(self, capsys, tmp_path):
        out = run(capsys, "export", str(tmp_path / "exports"))
        assert out.count("wrote") == 4
        assert (tmp_path / "exports"
                / "fig11_13_trends.json").exists()


class TestDumpCommand:
    def test_dump_to_stdout(self, capsys):
        out = run(capsys, "dump", "--node", "65")
        assert "FloorplanPhysical" in out
        assert "Pattern loop=" in out

    def test_dump_round_trips(self, capsys, tmp_path):
        path = tmp_path / "out.dram"
        run(capsys, "dump", "--node", "65", "-o", str(path))
        out = run(capsys, "idd", "--file", str(path))
        assert "idd0" in out
