"""Tests for the floorplan geometry engine."""

import pytest

from repro.description.signaling import SegmentKind, SignalSegment
from repro.errors import FloorplanError
from repro.floorplan import FloorplanGeometry


@pytest.fixture(scope="module")
def geometry(ddr3_device):
    return FloorplanGeometry(ddr3_device)


class TestArrayBlockDerivation:
    def test_block_width_from_page(self, ddr3_device, geometry):
        # Open architecture: page bits × bitline pitch.
        array = ddr3_device.floorplan.array
        expected = 16384 * array.bl_pitch
        assert geometry.array_block.cell_width == pytest.approx(expected)

    def test_block_height_from_rows(self, ddr3_device, geometry):
        # 2 Gb / 8 banks / 16 kb page = 16384 rows → 32 sub-array rows.
        assert geometry.array_block.subarray_rows == 32
        expected = 32 * ddr3_device.floorplan.array.local_bitline_length
        assert geometry.array_block.cell_height == pytest.approx(expected)

    def test_subarray_cols_match_device(self, ddr3_device, geometry):
        assert (geometry.array_block.subarray_cols
                == ddr3_device.swls_per_activate)

    def test_stripes_add_to_block_size(self, geometry):
        block = geometry.array_block
        assert block.width > block.cell_width
        assert block.height > block.cell_height
        assert block.area > block.cell_area

    def test_master_wordline_is_block_width(self, geometry):
        block = geometry.array_block
        assert block.master_wordline_length == block.width
        assert block.column_line_length == block.height


class TestDieLevel:
    def test_die_area_in_commodity_range(self, geometry):
        # The paper sizes dies between roughly 40 and 60 mm²; allow
        # modest overshoot for the high-density nodes.
        area_mm2 = geometry.die_area * 1e6
        assert 30.0 < area_mm2 < 90.0

    def test_array_efficiency_band(self, geometry):
        # Commodity DRAMs land roughly between 45 % and 65 %.
        assert 0.45 < geometry.array_efficiency < 0.70

    def test_sa_stripe_share_band(self, geometry):
        # Paper §II: 8 % to 15 % of die area (we allow slight overshoot).
        assert 0.06 < geometry.sa_stripe_share < 0.20

    def test_swd_stripe_share_band(self, geometry):
        # Paper §II: 5 % to 10 %.
        assert 0.03 < geometry.swd_stripe_share < 0.12

    def test_die_dimensions_positive(self, geometry):
        assert geometry.die_width > 0
        assert geometry.die_height > 0


class TestCoordinates:
    def test_block_centers_ordered(self, geometry):
        x0, _ = geometry.block_center(0, 2)
        x3, _ = geometry.block_center(3, 2)
        x6, _ = geometry.block_center(6, 2)
        assert x0 < x3 < x6

    def test_center_symmetry(self, geometry):
        # The 7-column grid is symmetric, so block 3 sits at die centre.
        x3, _ = geometry.block_center(3, 2)
        assert x3 == pytest.approx(geometry.die_width / 2.0)

    def test_out_of_range_rejected(self, geometry):
        with pytest.raises(FloorplanError):
            geometry.block_center(7, 0)
        with pytest.raises(FloorplanError):
            geometry.block_center(0, 5)

    def test_block_size_lookup(self, geometry, ddr3_device):
        width, height = geometry.block_size(1, 2)
        assert width == pytest.approx(
            ddr3_device.floorplan.widths["R1"]
        )
        assert height == pytest.approx(
            ddr3_device.floorplan.heights["P2"]
        )


class TestSegmentLengths:
    def test_span_is_manhattan_distance(self, geometry):
        segment = SignalSegment(kind=SegmentKind.SPAN, start=(0, 2),
                                end=(3, 2))
        x0, y0 = geometry.block_center(0, 2)
        x3, y3 = geometry.block_center(3, 2)
        assert geometry.segment_length(segment) == pytest.approx(
            abs(x3 - x0) + abs(y3 - y0)
        )

    def test_inside_fraction_of_block(self, geometry):
        segment = SignalSegment(kind=SegmentKind.INSIDE, start=(3, 2),
                                fraction=0.25, direction="h")
        width, _ = geometry.block_size(3, 2)
        assert geometry.segment_length(segment) == pytest.approx(
            0.25 * width
        )

    def test_inside_vertical_uses_height(self, geometry):
        segment = SignalSegment(kind=SegmentKind.INSIDE, start=(3, 2),
                                fraction=0.5, direction="v")
        _, height = geometry.block_size(3, 2)
        assert geometry.segment_length(segment) == pytest.approx(
            0.5 * height
        )

    def test_net_wire_length_sums_segments(self, geometry, ddr3_device):
        net = ddr3_device.signaling.net("ClockTree")
        total = sum(geometry.segment_length(seg) for seg in net.segments)
        assert geometry.net_wire_length("ClockTree") == pytest.approx(total)

    def test_clock_tree_spans_die_width(self, geometry):
        # The two clock segments together run from end to end.
        length = geometry.net_wire_length("ClockTree")
        assert length == pytest.approx(
            geometry.die_width - geometry.block_size(0, 2)[0] / 2
            - geometry.block_size(6, 2)[0] / 2, rel=0.01
        )


class TestMultiBlockBanks:
    def test_sdr_block_narrower_than_page(self, sdr_device):
        geometry = FloorplanGeometry(sdr_device)
        array = sdr_device.floorplan.array
        # The page splits over two blocks, so the block holds half of it
        # (folded: two wires per bit).
        expected = (sdr_device.page_bits_per_block * array.bl_pitch * 2)
        assert geometry.array_block.cell_width == pytest.approx(expected)

    def test_ddr5_block_stacks_banks(self, ddr5_device):
        geometry = FloorplanGeometry(ddr5_device)
        # Four banks per block: rows per block = 4 × rows per bank.
        rows_per_block = (geometry.array_block.subarray_rows
                          * ddr5_device.floorplan.array.rows_per_subarray)
        assert rows_per_block == 4 * ddr5_device.spec.rows_per_bank
