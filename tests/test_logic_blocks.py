"""Tests for peripheral logic-block descriptions."""

import pytest

from repro.description import LogicBlock
from repro.description.signaling import Trigger
from repro.errors import DescriptionError


def control_block(**overrides):
    values = dict(name="control", n_gates=32000, w_n=0.5e-6, w_p=1.0e-6)
    values.update(overrides)
    return LogicBlock(**values)


class TestValidation:
    def test_accepts_typical_block(self):
        block = control_block()
        assert block.is_background
        assert block.trigger is Trigger.PER_CTRL_CLOCK

    def test_rejects_zero_gates(self):
        with pytest.raises(DescriptionError):
            control_block(n_gates=0)

    def test_rejects_float_gates(self):
        with pytest.raises(DescriptionError):
            control_block(n_gates=100.5)

    def test_rejects_zero_width(self):
        with pytest.raises(DescriptionError):
            control_block(w_n=0.0)

    def test_rejects_density_above_one(self):
        with pytest.raises(DescriptionError):
            control_block(layout_density=1.5)

    def test_rejects_zero_toggle(self):
        with pytest.raises(DescriptionError):
            control_block(toggle=0.0)

    def test_rejects_sub_unity_transistors_per_gate(self):
        with pytest.raises(DescriptionError):
            control_block(transistors_per_gate=0.5)

    def test_operations_make_block_gated(self):
        block = control_block(operations=frozenset({"rd", "wr"}))
        assert not block.is_background


class TestAreaModel:
    def test_device_area_scales_with_gates(self):
        one = control_block(n_gates=1000).device_area(0.1e-6)
        two = control_block(n_gates=2000).device_area(0.1e-6)
        assert two == pytest.approx(2 * one)

    def test_block_area_inverse_in_density(self):
        dense = control_block(layout_density=0.5).block_area(0.1e-6)
        sparse = control_block(layout_density=0.25).block_area(0.1e-6)
        assert sparse == pytest.approx(2 * dense)

    def test_wire_length_grows_with_sparser_layout(self):
        dense = control_block(layout_density=0.5)
        sparse = control_block(layout_density=0.125)
        assert (sparse.wire_length_per_gate(0.1e-6)
                > dense.wire_length_per_gate(0.1e-6))

    def test_wire_length_scales_with_wiring_density(self):
        low = control_block(wiring_density=0.25)
        high = control_block(wiring_density=0.5)
        assert high.wire_length_per_gate(0.1e-6) == pytest.approx(
            2 * low.wire_length_per_gate(0.1e-6)
        )

    def test_wire_length_order_of_magnitude(self):
        # Local wires per gate should be on the micron scale, not metres.
        length = control_block().wire_length_per_gate(0.1e-6)
        assert 0.1e-6 < length < 100e-6

    def test_scaled_copy(self):
        block = control_block().scaled(toggle=0.2)
        assert block.toggle == 0.2
        assert block.name == "control"
