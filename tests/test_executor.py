"""Process-parallel execution backend: sharding, determinism, errors."""

import functools

import pytest

from repro.analysis.corners import corner_sweep
from repro.analysis.montecarlo import monte_carlo
from repro.analysis.sensitivity import sensitivity
from repro.analysis.trends import generation_trend
from repro.core.idd import idd7_mixed
from repro.engine import EvaluationSession, resolve_backend
from repro.engine.cache import EngineStats
from repro.engine.cache import merge_stats
from repro.engine.executor import default_jobs, shard
from repro.errors import ModelError
from repro.schemes import compare_schemes
from repro.service.faults import power_kill_always, power_kill_once


def _power(model):
    """Module-level evaluation callable (picklable for the pool)."""
    return idd7_mixed(model).power


def _explode(model):
    """Module-level callable that always fails."""
    raise ValueError("intentional failure")


def _variants(device, count=6):
    return [device.scale_path("technology.c_bitline", 1.0 + 0.01 * step)
            for step in range(count)]


class TestSharding:
    def test_contiguous_cover_in_order(self):
        ranges = shard(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_more_chunks_than_items(self):
        assert shard(2, 8) == [(0, 1), (1, 2)]

    def test_empty_input(self):
        assert shard(0, 4) == []

    def test_single_chunk(self):
        assert shard(5, 1) == [(0, 5)]

    def test_balanced_within_one(self):
        sizes = [stop - start for start, stop in shard(17, 4)]
        assert sum(sizes) == 17
        assert max(sizes) - min(sizes) <= 1

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestBackendResolution:
    def test_default_is_serial(self):
        assert resolve_backend(None, None) == "serial"
        assert resolve_backend(None, 1) == "serial"

    def test_jobs_alone_selects_threads(self):
        assert resolve_backend(None, 4) == "thread"

    def test_explicit_backends_pass_through(self):
        for name in ("serial", "thread", "process"):
            assert resolve_backend(name, 2) == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ModelError):
            resolve_backend("gpu", 2)

    def test_map_rejects_unknown_backend(self, ddr3_device):
        with pytest.raises(ModelError):
            EvaluationSession().map([ddr3_device], _power,
                                    backend="gpu")


class TestProcessBackend:
    def test_map_matches_serial_bit_for_bit(self, ddr3_device):
        devices = _variants(ddr3_device)
        serial = EvaluationSession().map(devices, _power)
        pooled = EvaluationSession().map(devices, _power, jobs=2,
                                         backend="process")
        assert pooled == serial

    def test_worker_stats_merge_into_parent(self, ddr3_device):
        devices = _variants(ddr3_device)
        session = EvaluationSession()
        session.map(devices, _power, jobs=2, backend="process")
        stats = session.stats
        # Worker misses for every device plus the parent's one build
        # of the shared-memory base model.
        assert stats.misses == len(devices) + 1
        assert stats.build_seconds > 0.0
        assert stats.shm_stores == 1
        assert stats.shm_loads >= 1
        assert stats.shm_errors == 0

    def test_unpicklable_callable_rejected(self, ddr3_device):
        devices = _variants(ddr3_device)
        with pytest.raises(ModelError, match="picklable"):
            EvaluationSession().map(devices,
                                    lambda model: model.device.name,
                                    jobs=2, backend="process")

    def test_worker_error_names_device(self, ddr3_device):
        devices = _variants(ddr3_device)
        with pytest.raises(ModelError) as failure:
            EvaluationSession().map(devices, _explode, jobs=2,
                                    backend="process")
        message = str(failure.value)
        assert "device" in message
        assert "fingerprint" in message
        assert "intentional failure" in message

    def test_single_device_degrades_to_serial(self, ddr3_device):
        result = EvaluationSession().map([ddr3_device], _power,
                                         jobs=4, backend="process")
        assert result == [_power(EvaluationSession().model(
            ddr3_device))]


class TestSerialAndThreadErrorReporting:
    def test_serial_fn_error_names_index_and_fingerprint(
            self, ddr3_device):
        devices = _variants(ddr3_device, count=3)
        with pytest.raises(ModelError) as failure:
            EvaluationSession().map(devices, _explode)
        message = str(failure.value)
        assert "device 0" in message
        assert "fingerprint" in message
        assert failure.value.__cause__ is not None

    def test_thread_fn_error_names_index_and_fingerprint(
            self, ddr3_device):
        devices = _variants(ddr3_device, count=4)
        with pytest.raises(ModelError) as failure:
            EvaluationSession().map(devices, _explode, jobs=2)
        assert "fingerprint" in str(failure.value)


class TestSweepDeterminism:
    """Process backend == serial bit-for-bit on every hot sweep path."""

    def test_montecarlo(self, ddr3_device):
        serial = monte_carlo(ddr3_device, samples=12, seed=7)
        pooled = monte_carlo(ddr3_device, samples=12, seed=7,
                             jobs=2, backend="process")
        assert [d.samples for d in pooled] == \
            [d.samples for d in serial]

    def test_sensitivity(self, ddr3_device):
        serial = sensitivity(ddr3_device)
        pooled = sensitivity(ddr3_device, jobs=2, backend="process")
        assert [(r.name, r.power_low, r.power_high) for r in pooled] \
            == [(r.name, r.power_low, r.power_high) for r in serial]

    def test_corners(self, ddr3_device):
        serial = corner_sweep(ddr3_device)
        pooled = corner_sweep(ddr3_device, jobs=2, backend="process")
        assert [b.values_ma for b in pooled] == \
            [b.values_ma for b in serial]

    def test_trends(self):
        serial = generation_trend(node_list=[170, 90, 55])
        pooled = generation_trend(node_list=[170, 90, 55], jobs=2,
                                  backend="process")
        assert pooled == serial

    def test_schemes(self, ddr3_device):
        serial = compare_schemes(ddr3_device)
        pooled = compare_schemes(ddr3_device, jobs=2,
                                 backend="process")
        assert [(r.scheme, r.modified.power) for r in pooled] == \
            [(r.scheme, r.modified.power) for r in serial]

    def test_thread_backend_still_matches(self, ddr3_device):
        serial = monte_carlo(ddr3_device, samples=8, seed=3)
        threaded = monte_carlo(ddr3_device, samples=8, seed=3,
                               jobs=2, backend="thread")
        assert [d.samples for d in threaded] == \
            [d.samples for d in serial]


class TestWorkerStatsMerge:
    def test_size_merges_as_max_not_sum(self):
        # size is an occupancy gauge: two workers each holding a few
        # models do not jointly hold the sum from any single cache's
        # point of view.  The pre-fix merge summed it.
        left = EngineStats(hits=2, misses=3, evictions=1, size=3,
                           capacity=8, build_seconds=0.25,
                           disk_hits=1, disk_misses=2, disk_writes=2)
        right = EngineStats(hits=1, misses=5, evictions=0, size=5,
                            capacity=8, build_seconds=0.5,
                            disk_misses=5, disk_writes=5,
                            disk_corrupt=1)
        merged = merge_stats(left, right)
        assert merged.size == 5

    def test_counters_still_sum(self):
        left = EngineStats(hits=2, misses=3, evictions=1, size=3,
                           capacity=8, build_seconds=0.25,
                           disk_hits=1, disk_misses=2, disk_writes=2)
        right = EngineStats(hits=1, misses=5, evictions=0, size=5,
                            capacity=8, build_seconds=0.5,
                            disk_misses=5, disk_writes=5,
                            disk_corrupt=1)
        merged = merge_stats(left, right)
        assert merged.hits == 3
        assert merged.misses == 8
        assert merged.evictions == 1
        assert merged.capacity == 8
        assert merged.build_seconds == pytest.approx(0.75)
        assert merged.disk_hits == 1
        assert merged.disk_misses == 7
        assert merged.disk_writes == 7
        assert merged.disk_corrupt == 1

    def test_pooled_size_is_parent_occupancy(self, ddr3_device):
        # End to end: models were built in the workers, so absorbing
        # their counters must not inflate the parent's occupancy
        # gauge — it stays the parent cache's own (empty) count while
        # the build counters reflect the whole sweep.
        devices = _variants(ddr3_device)
        session = EvaluationSession()
        session.map(devices, _power, jobs=2, backend="process")
        # The parent holds exactly its own shared-memory base model,
        # never the workers' occupancy.
        assert session.stats.size == 1
        assert session.stats.misses == len(devices) + 1


class TestWorkerLoss:
    """A killed pool worker must not abort the sweep.

    The kill callables (:mod:`repro.service.faults`) SIGKILL their own
    *worker* when an arming file exists and are no-ops in the parent,
    so the serial baseline evaluates the same devices normally.
    """

    def test_killed_worker_retries_and_matches_serial(
            self, ddr3_device, tmp_path):
        devices = _variants(ddr3_device)
        flag = tmp_path / "kill-once"
        fn = functools.partial(power_kill_once, str(flag))
        serial = EvaluationSession().map(devices, fn)
        flag.write_text("armed")
        session = EvaluationSession()
        pooled = session.map(devices, fn, jobs=2, backend="process")
        # Bit-for-bit identical despite one worker dying mid-sweep.
        assert pooled == serial
        assert session.stats.pool_retries >= 1
        assert session.stats.serial_fallbacks == 0
        assert not flag.exists()  # consumed by exactly one worker

    def test_repeated_kills_degrade_to_serial_fallback(
            self, ddr3_device, tmp_path):
        devices = _variants(ddr3_device)
        flag = tmp_path / "kill-always"
        fn = functools.partial(power_kill_always, str(flag))
        serial = EvaluationSession().map(devices, fn)
        flag.write_text("armed")
        session = EvaluationSession()
        pooled = session.map(devices, fn, jobs=2, backend="process")
        # Both pool attempts die, so the lost chunks are finished
        # in-parent — still bit-for-bit identical.
        assert pooled == serial
        assert session.stats.serial_fallbacks >= 1

    def test_unarmed_kill_callable_is_plain_evaluation(
            self, ddr3_device, tmp_path):
        devices = _variants(ddr3_device, count=4)
        fn = functools.partial(power_kill_once,
                               str(tmp_path / "never-armed"))
        session = EvaluationSession()
        pooled = session.map(devices, fn, jobs=2, backend="process")
        assert pooled == EvaluationSession().map(devices, fn)
        assert session.stats.pool_retries == 0
        assert session.stats.serial_fallbacks == 0
