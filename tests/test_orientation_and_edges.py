"""Coverage for less-travelled description branches and edge cases."""

import pytest

from repro import DramPowerModel
from repro.description import Command, Pattern
from repro.devices import build_device
from repro.errors import DescriptionError
from repro.floorplan import FloorplanGeometry


class TestBitlineOrientation:
    """The floorplan supports bitlines parallel or perpendicular to the
    pad row (Table I: 'Bitline direction')."""

    @pytest.fixture(scope="class")
    def rotated(self, ddr3_device):
        return ddr3_device.replace_path(
            "floorplan.array.bitline_direction", "h"
        )

    def test_die_rotates(self, ddr3_device, rotated):
        base = FloorplanGeometry(ddr3_device)
        turned = FloorplanGeometry(rotated)
        # The array block swaps extents between the axes.
        assert turned.die_width != pytest.approx(base.die_width,
                                                 rel=0.05)

    def test_array_block_itself_unchanged(self, ddr3_device, rotated):
        base = FloorplanGeometry(ddr3_device).array_block
        turned = FloorplanGeometry(rotated).array_block
        assert turned.width == pytest.approx(base.width)
        assert turned.height == pytest.approx(base.height)
        assert turned.area == pytest.approx(base.area)

    def test_array_power_unchanged_by_rotation(self, ddr3_device,
                                               rotated):
        # Rotation changes the peripheral wire runs, not the array
        # energies.
        base = DramPowerModel(ddr3_device)
        turned = DramPowerModel(rotated)
        assert turned.operation_breakdown(Command.ACT).get(
            "bitline") == pytest.approx(
            base.operation_breakdown(Command.ACT).get("bitline"))

    def test_total_power_close(self, ddr3_device, rotated):
        base = DramPowerModel(ddr3_device).pattern_power().power
        turned = DramPowerModel(rotated).pattern_power().power
        assert turned == pytest.approx(base, rel=0.15)


class TestExtremeDevices:
    def test_x32_wide_part(self):
        device = build_device(31, io_width=32)
        model = DramPowerModel(device)
        assert model.pattern_power().power > 0
        assert device.spec.bits_per_access == 512

    def test_tiny_sdr_x4(self):
        device = build_device(170, io_width=4,
                              density_bits=128 << 20)
        model = DramPowerModel(device)
        assert device.technology.bits_per_csl == 4
        assert model.pattern_power().power > 0

    def test_burst_chop(self, ddr3_device):
        # Burst length below the prefetch is valid spec-wise (burst
        # chop): the access still moves a full prefetch internally.
        chopped = ddr3_device.replace_path("spec.burst_length", 4)
        model = DramPowerModel(chopped)
        assert model.pattern_power().power > 0


class TestPatternEdgeCases:
    def test_single_slot_loop(self, ddr3_model):
        result = ddr3_model.pattern_power(Pattern.parse("rd"))
        # A gapless read every control clock — far beyond the data bus,
        # but the arithmetic must stay linear.
        expected = (ddr3_model.background_power
                    + ddr3_model.operation_energy(Command.RD)
                    * ddr3_model.device.spec.f_ctrlclock)
        assert result.power == pytest.approx(expected)

    def test_long_nop_tail(self, ddr3_model):
        sparse = Pattern.parse("act" + " nop" * 30 + " pre nop")
        result = ddr3_model.pattern_power(sparse)
        assert result.power > ddr3_model.background_power
        dense = ddr3_model.pattern_power(Pattern.parse("act nop pre nop"))
        assert result.power < dense.power


class TestDescriptionEdgeCases:
    def test_one_bank_per_csl_group_floor(self, ddr3_device):
        # bits_per_csl equal to the whole access is the 1-CSL corner.
        device = ddr3_device.replace_path("technology.bits_per_csl", 128)
        assert device.csls_per_access == 1
        assert DramPowerModel(device).pattern_power().power > 0

    def test_misaligned_csl_rejected(self, ddr3_device):
        with pytest.raises(DescriptionError):
            ddr3_device.replace_path("technology.bits_per_csl", 96)

    def test_zero_constant_current_allowed(self, ddr3_device):
        device = ddr3_device.replace_path("constant_current", 0.0)
        model = DramPowerModel(device)
        assert model.background_breakdown.get("power") == 0.0
