"""Client resilience: backoff, Retry-After, deadlines, breaker."""

import random
import threading

import pytest

from repro.client import (NO_RETRY, CircuitBreaker, RetryPolicy,
                          ServiceClient)
from repro.errors import CircuitOpenError, ServiceError
from repro.service import (FaultInjector, FaultRule, ServiceLimits,
                           create_service)


class FakeClock:
    """A controllable monotonic clock; sleeping advances it."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class FakeTransport:
    """Scripted `_request_once` replacement: a list of outcomes."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, method, path, payload, request_timeout,
                 expires):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _client(outcomes, retry=None, breaker=None, deadline=None):
    clock = FakeClock()
    client = ServiceClient("http://test", retry=retry,
                           breaker=breaker, deadline=deadline,
                           sleep=clock.sleep, clock=clock,
                           rng=random.Random(0))
    transport = FakeTransport(outcomes)
    client._request_once = transport
    return client, transport, clock


def _shed(status, retry_after=None):
    return ServiceError(f"shed {status}", status=status,
                        retry_after=retry_after)


class TestRetryPolicy:
    def test_retryable_statuses_and_connection_errors(self):
        policy = RetryPolicy()
        assert policy.is_retryable(_shed(429))
        assert policy.is_retryable(_shed(503))
        assert policy.is_retryable(ServiceError("down", status=0))
        assert not policy.is_retryable(_shed(400))
        assert not policy.is_retryable(_shed(500))

    def test_backoff_within_full_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=2.0,
                             multiplier=2.0)
        rng = random.Random(7)
        for attempt in range(1, 8):
            cap = min(2.0, 0.05 * 2.0 ** attempt)
            for _ in range(50):
                delay = policy.backoff(attempt, None, rng)
                assert 0.0 <= delay <= cap

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.001, max_delay=0.002)
        rng = random.Random(0)
        for _ in range(20):
            assert policy.backoff(1, 0.5, rng) >= 0.5


class TestRequestRetries:
    def test_recovers_from_shed_and_honours_retry_after(self):
        client, transport, clock = _client(
            [_shed(503, retry_after=0.2), {"ok": 1}])
        assert client.request("GET", "/stats") == {"ok": 1}
        assert transport.calls == 2
        assert len(clock.sleeps) == 1
        assert clock.sleeps[0] >= 0.2

    def test_non_retryable_status_raises_immediately(self):
        client, transport, _ = _client([_shed(400)])
        with pytest.raises(ServiceError) as failure:
            client.request("POST", "/evaluate", {})
        assert failure.value.status == 400
        assert transport.calls == 1

    def test_attempts_exhausted_raises_last_failure(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        client, transport, clock = _client(
            [_shed(429)] * 3, retry=policy)
        with pytest.raises(ServiceError) as failure:
            client.request("GET", "/stats")
        assert failure.value.status == 429
        assert transport.calls == 3
        assert len(clock.sleeps) == 2

    def test_no_retry_policy_observes_raw_status(self):
        client, transport, _ = _client([_shed(503)], retry=NO_RETRY)
        with pytest.raises(ServiceError) as failure:
            client.request("GET", "/stats")
        assert failure.value.status == 503
        assert transport.calls == 1

    def test_deadline_stops_retrying_early(self):
        # Retry-After of 10s would blow the 0.1s call budget: the
        # client gives up instead of sleeping past the deadline.
        client, transport, clock = _client(
            [_shed(503, retry_after=10.0)] * 4)
        with pytest.raises(ServiceError) as failure:
            client.request("GET", "/stats", deadline=0.1)
        assert "deadline exhausted" in str(failure.value)
        assert failure.value.status == 503
        assert transport.calls == 1
        assert clock.sleeps == []


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0)
        client, transport, _ = _client(
            [ServiceError("down", status=0)] * 2,
            retry=NO_RETRY, breaker=breaker)
        for _ in range(2):
            with pytest.raises(ServiceError):
                client.request("GET", "/stats")
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/stats")
        # Fail-fast: the transport was never touched again.
        assert transport.calls == 2

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0,
                                 clock=clock)
        client, transport, _ = _client(
            [ServiceError("down", status=0), {"ok": 1}, {"ok": 2}],
            retry=NO_RETRY, breaker=breaker)
        with pytest.raises(ServiceError):
            client.request("GET", "/stats")
        assert breaker.state == "open"
        clock.now += 1.5  # cooldown elapses -> half-open probe
        assert client.request("GET", "/stats") == {"ok": 1}
        assert breaker.state == "closed"
        assert client.request("GET", "/stats") == {"ok": 2}

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0,
                                 clock=clock)
        client, transport, _ = _client(
            [ServiceError("down", status=0)] * 2,
            retry=NO_RETRY, breaker=breaker)
        with pytest.raises(ServiceError):
            client.request("GET", "/stats")
        clock.now += 1.5
        with pytest.raises(ServiceError):
            client.request("GET", "/stats")
        assert transport.calls == 2
        # Re-opened: the next call is refused without a probe.
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/stats")
        assert transport.calls == 2

    def test_shedding_does_not_trip_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0)
        client, transport, _ = _client(
            [_shed(429)] * 6, retry=NO_RETRY, breaker=breaker)
        for _ in range(6):
            with pytest.raises(ServiceError):
                client.request("GET", "/stats")
        assert breaker.state == "closed"
        assert transport.calls == 6

    def test_client_bug_statuses_do_not_count(self):
        assert not CircuitBreaker.counts(_shed(400))
        assert not CircuitBreaker.counts(_shed(404))
        assert CircuitBreaker.counts(ServiceError("x", status=0))
        assert CircuitBreaker.counts(_shed(503))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestWaitUntilReady:
    def test_backoff_doubles_up_to_cap(self):
        client, transport, clock = _client(
            [ServiceError("refused", status=0)] * 50)
        assert not client.wait_until_ready(timeout=2.0,
                                           interval=0.05,
                                           max_interval=0.4)
        # Probes back off 0.05 -> 0.1 -> 0.2 -> 0.4 -> 0.4 ... and
        # the final sleep is clipped to the remaining budget.
        assert clock.sleeps[:4] == [0.05, 0.1, 0.2, 0.4]
        assert all(delay <= 0.4 for delay in clock.sleeps)
        assert sum(clock.sleeps) <= 2.0 + 1e-9
        assert "no HTTP service reachable" in client.last_ready_error

    def test_distinguishes_http_error_from_unreachable(self):
        client, transport, clock = _client([_shed(500)] * 50)
        assert not client.wait_until_ready(timeout=0.2)
        assert "answered HTTP 500" in client.last_ready_error

    def test_returns_true_on_first_success(self):
        client, transport, clock = _client([{"status": "ok"}])
        assert client.wait_until_ready(timeout=1.0)
        assert clock.sleeps == []
        assert client.last_ready_error is None

    def test_probes_bypass_an_open_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=99.0)
        client, transport, clock = _client(
            [ServiceError("down", status=0), {"status": "ok"}],
            retry=NO_RETRY, breaker=breaker)
        with pytest.raises(ServiceError):
            client.request("GET", "/stats")
        assert breaker.state == "open"
        # Readiness probing must not be starved by the breaker.
        assert client.wait_until_ready(timeout=1.0)


class TestAgainstRealServer:
    """End to end: injected faults, real sockets, real recovery."""

    @pytest.fixture()
    def service(self):
        limits = ServiceLimits(retry_after=0.0)
        svc = create_service(host="127.0.0.1", port=0, limits=limits)
        thread = threading.Thread(target=svc.serve_forever,
                                  daemon=True)
        thread.start()
        yield svc
        svc.shutdown()
        svc.server_close()
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_recovers_from_connection_reset(self, service):
        service.faults = FaultInjector(rules=[
            FaultRule(kind="reset", path="/evaluate", times=1)])
        client = ServiceClient(
            f"http://127.0.0.1:{service.server_port}",
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05))
        reply = client.evaluate(device={"node": 55})
        assert reply["count"] == 1
        assert service.faults.snapshot()["reset"] == 1

    def test_recovers_from_transient_5xx(self, service):
        service.faults = FaultInjector(rules=[
            FaultRule(kind="error", path="/evaluate", times=2,
                      status=503)])
        client = ServiceClient(
            f"http://127.0.0.1:{service.server_port}",
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05))
        assert client.evaluate(device={"node": 55})["count"] == 1
        assert client.stats()["errors"] == 2
