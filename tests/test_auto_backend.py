"""Adaptive backend selection (``backend="auto"``) and its policy."""

import pytest

from repro.cli import build_parser
from repro.devices import build_device
from repro.engine import (AUTO, EvaluationSession, choose_backend,
                          estimate_build_seconds)
from repro.engine.cache import EngineStats
from repro.engine.executor import (DEFAULT_BUILD_SECONDS,
                                   WORKER_STARTUP_SECONDS,
                                   is_picklable, resolve_backend)
from repro.errors import ModelError
from repro.schemes import compare_schemes


def _stats(misses=0, build_seconds=0.0):
    return EngineStats(hits=0, misses=misses, evictions=0, size=0,
                       capacity=8, build_seconds=build_seconds)


def _power(model):
    return model.pattern_power().power


class TestChooseBackendPolicy:
    """The policy table the ISSUE asks for, case by case."""

    @pytest.mark.parametrize("width", [0, 1, 2])
    def test_tiny_sweeps_stay_serial(self, width):
        # Even with many workers and a huge build cost.
        assert choose_backend(width, jobs=16,
                              build_seconds=10.0) == "serial"

    def test_single_worker_stays_serial(self):
        assert choose_backend(400, jobs=1,
                              build_seconds=10.0) == "serial"

    def test_wide_sweep_with_workers_goes_process(self):
        # serial = 400 * 5 ms = 2.0 s; pooled = 4 * 0.1 + 0.5 = 0.9 s.
        assert choose_backend(400, jobs=4,
                              build_seconds=0.005) == "process"

    def test_narrow_sweep_stays_serial_despite_workers(self):
        # serial = 4 * 5 ms = 20 ms; pool startup alone is 400 ms.
        assert choose_backend(4, jobs=4,
                              build_seconds=0.005) == "serial"

    def test_expensive_builds_tip_narrow_sweeps_to_process(self):
        # serial = 3 * 0.5 = 1.5 s; pooled = 2 * 0.1 + 0.75 = 0.95 s.
        assert choose_backend(3, jobs=2,
                              build_seconds=0.5) == "process"

    def test_workers_capped_at_width(self):
        # 16 requested workers only cost 3 startups for 3 devices:
        # serial = 3.0 s; pooled = 3 * 0.1 + 1.0 = 1.3 s.
        assert choose_backend(3, jobs=16,
                              build_seconds=1.0) == "process"

    def test_breakeven_prefers_serial(self):
        # pooled == serial exactly: width * b = w * S + width * b / w
        # with width=4, jobs=2 -> 4b = 0.2 + 2b -> b = 0.1.
        assert 4 * 0.1 == pytest.approx(
            2 * WORKER_STARTUP_SECONDS + 4 * 0.1 / 2)
        assert choose_backend(4, jobs=2, build_seconds=0.1) == "serial"

    @pytest.mark.parametrize("bad", [None, 0.0, -1.0])
    def test_unknown_build_cost_uses_default(self, bad):
        expected = choose_backend(400, jobs=4,
                                  build_seconds=DEFAULT_BUILD_SECONDS)
        assert choose_backend(400, jobs=4,
                              build_seconds=bad) == expected

    def test_never_chooses_thread(self):
        for width in (1, 3, 10, 1000):
            for jobs in (1, 2, 8):
                assert choose_backend(width, jobs, 0.05) != "thread"


class TestEstimateBuildSeconds:
    def test_no_stats_uses_default(self):
        assert estimate_build_seconds(None) == DEFAULT_BUILD_SECONDS

    def test_no_cold_builds_uses_default(self):
        stats = _stats(misses=0, build_seconds=0.0)
        assert estimate_build_seconds(stats) == DEFAULT_BUILD_SECONDS

    def test_observed_cost_is_per_miss(self):
        stats = _stats(misses=4, build_seconds=0.2)
        assert estimate_build_seconds(stats) == pytest.approx(0.05)

    def test_zero_measured_time_falls_back(self):
        stats = _stats(misses=3, build_seconds=0.0)
        assert estimate_build_seconds(stats) == DEFAULT_BUILD_SECONDS


class TestResolveBackend:
    def test_auto_passes_through_unresolved(self):
        assert resolve_backend(AUTO, None) == AUTO
        assert resolve_backend(AUTO, 4) == AUTO

    def test_none_keeps_historical_defaults(self):
        assert resolve_backend(None, None) == "serial"
        assert resolve_backend(None, 1) == "serial"
        assert resolve_backend(None, 2) == "thread"

    def test_unknown_backend_names_the_choices(self):
        with pytest.raises(ModelError) as failure:
            resolve_backend("cluster", None)
        for name in ("serial", "thread", "process", "auto"):
            assert name in str(failure.value)

    @pytest.mark.parametrize("backend",
                             ["serial", "thread", "process", AUTO,
                              None])
    @pytest.mark.parametrize("jobs", [0, -1])
    def test_nonpositive_jobs_rejected_for_every_backend(
            self, backend, jobs):
        # The centralized validation point: before the fix only the
        # process pool checked, so serial/thread accepted jobs=0.
        with pytest.raises(ModelError, match="positive worker count"):
            resolve_backend(backend, jobs)

    @pytest.mark.parametrize("backend",
                             ["serial", "thread", "process", AUTO])
    def test_session_map_rejects_zero_jobs(self, backend):
        session = EvaluationSession()
        with pytest.raises(ModelError, match="positive worker count"):
            session.map([build_device(55)], _power,
                        jobs=0, backend=backend)


class TestSessionAutoBackend:
    def test_auto_matches_serial_bit_for_bit(self):
        devices = [build_device(node) for node in (170, 90, 55)]
        session = EvaluationSession()
        serial = session.map(devices, _power, backend="serial")
        auto = session.map(devices, _power, backend=AUTO)
        assert auto == serial

    def test_auto_process_path(self, monkeypatch):
        # Force the policy to pick the pool and prove the call still
        # produces serial-identical results through it.
        monkeypatch.setattr("repro.engine.session.choose_backend",
                            lambda *args, **kwargs: "process")
        devices = [build_device(node) for node in (170, 90, 55)]
        session = EvaluationSession()
        serial = session.map(devices, _power, backend="serial")
        auto = session.map(devices, _power, backend=AUTO, jobs=2)
        assert auto == serial

    def test_auto_downgrades_unpicklable_to_serial(self, monkeypatch):
        monkeypatch.setattr("repro.engine.session.choose_backend",
                            lambda *args, **kwargs: "process")
        devices = [build_device(node) for node in (170, 90, 55)]
        session = EvaluationSession()
        results = session.map(devices,
                              lambda model: model.pattern_power().power,
                              backend=AUTO, jobs=2)
        assert results == session.map(devices, _power,
                                      backend="serial")

    def test_explicit_process_still_rejects_unpicklable(self):
        session = EvaluationSession()
        with pytest.raises(ModelError, match="picklable"):
            session.map([build_device(55)] * 3,
                        lambda model: model.pattern_power().power,
                        backend="process", jobs=2)

    def test_is_picklable_distinguishes(self):
        assert is_picklable(_power)
        assert not is_picklable(lambda model: model)


class TestAutoInFrontEnds:
    @pytest.mark.parametrize("command", ["sensitivity", "corners",
                                         "trends", "schemes"])
    def test_cli_sweeps_default_to_auto(self, command):
        args = build_parser().parse_args([command])
        assert args.backend == "auto"

    def test_cli_accepts_explicit_auto(self):
        args = build_parser().parse_args(
            ["sensitivity", "--backend", "auto"])
        assert args.backend == "auto"

    def test_compare_schemes_accepts_auto(self, ddr3_device):
        explicit = compare_schemes(ddr3_device, backend="serial")
        auto = compare_schemes(ddr3_device, backend=AUTO)
        assert [result.scheme for result in auto] == \
            [result.scheme for result in explicit]
        assert [result.power_saving for result in auto] == \
            [result.power_saving for result in explicit]
