"""Tests for the voltage-domain model."""

import pytest
from hypothesis import given, strategies as st

from repro.description import Rail, VoltageSet
from repro.errors import DescriptionError


def ddr3_voltages():
    return VoltageSet(vdd=1.5, vint=1.4, vbl=1.15, vpp=2.8,
                      eff_vint=0.93, eff_vbl=0.77, eff_vpp=0.75)


class TestValidation:
    def test_accepts_typical_ddr3(self):
        volts = ddr3_voltages()
        assert volts.vpp > volts.vdd > volts.vbl

    def test_rejects_vint_above_vdd(self):
        with pytest.raises(DescriptionError):
            VoltageSet(vdd=1.5, vint=1.8, vbl=1.2, vpp=2.8)

    def test_rejects_vbl_above_vpp(self):
        # The wordline boost must cover the full bitline level.
        with pytest.raises(DescriptionError):
            VoltageSet(vdd=1.5, vint=1.4, vbl=2.9, vpp=2.8)

    def test_rejects_zero_voltage(self):
        with pytest.raises(DescriptionError):
            VoltageSet(vdd=0.0, vint=1.4, vbl=1.2, vpp=2.8)

    def test_rejects_efficiency_above_one(self):
        with pytest.raises(DescriptionError):
            VoltageSet(vdd=1.5, vint=1.4, vbl=1.2, vpp=2.8, eff_vpp=1.2)

    def test_rejects_zero_efficiency(self):
        with pytest.raises(DescriptionError):
            VoltageSet(vdd=1.5, vint=1.4, vbl=1.2, vpp=2.8, eff_vbl=0.0)


class TestLevels:
    def test_level_lookup(self):
        volts = ddr3_voltages()
        assert volts.level(Rail.VDD) == 1.5
        assert volts.level(Rail.VINT) == 1.4
        assert volts.level(Rail.VBL) == 1.15
        assert volts.level(Rail.VPP) == 2.8

    def test_level_accepts_string_rail(self):
        assert ddr3_voltages().level("vpp") == 2.8

    def test_efficiency_lookup(self):
        volts = ddr3_voltages()
        assert volts.efficiency(Rail.VDD) == 1.0
        assert volts.efficiency(Rail.VPP) == 0.75


class TestEnergyAccounting:
    def test_vdd_rail_energy_is_qv(self):
        volts = ddr3_voltages()
        assert volts.vdd_energy(1e-9, Rail.VDD) == pytest.approx(1.5e-9)

    def test_derived_rail_divides_by_efficiency(self):
        volts = ddr3_voltages()
        direct = 1e-9 * 2.8
        assert volts.vdd_energy(1e-9, Rail.VPP) == pytest.approx(
            direct / 0.75
        )

    def test_linear_regulator_identity(self):
        # With eff = Vint/Vdd, the Vdd current equals the rail current —
        # the defining property of a linear regulator.
        volts = VoltageSet(vdd=1.5, vint=1.2, vbl=1.0, vpp=2.8,
                           eff_vint=1.2 / 1.5)
        charge_rate = 1e-3  # 1 mA at the rail
        assert volts.vdd_current(charge_rate, Rail.VINT) == pytest.approx(
            charge_rate
        )

    def test_pump_draws_double_current(self):
        # An ideal voltage doubler at eff = Vpp/(2 Vdd) draws twice the
        # delivered charge from Vdd.
        volts = VoltageSet(vdd=1.5, vint=1.4, vbl=1.2, vpp=2.8,
                           eff_vpp=2.8 / 3.0)
        assert volts.vdd_current(1e-3, Rail.VPP) == pytest.approx(2e-3)

    @given(st.floats(min_value=1e-12, max_value=1e-6))
    def test_energy_linear_in_charge(self, charge):
        volts = ddr3_voltages()
        one = volts.vdd_energy(charge, Rail.VINT)
        two = volts.vdd_energy(2 * charge, Rail.VINT)
        assert two == pytest.approx(2 * one)


class TestCopying:
    def test_with_levels(self):
        volts = ddr3_voltages().with_levels(vint=1.2)
        assert volts.vint == 1.2
        assert volts.vdd == 1.5

    def test_as_dict(self):
        data = ddr3_voltages().as_dict()
        assert data["vpp"] == 2.8
        assert data["eff_vpp"] == 0.75
        assert len(data) == 7
