"""Tests for the timed command-trace engine."""

import pytest

from repro.core.trace import TraceCommand, TraceError, evaluate_trace
from repro.description import Command


def ns(value):
    return value * 1e-9


def simple_trace(timing):
    """One legal row cycle with a read."""
    return [
        TraceCommand(ns(0), Command.ACT, bank=0, row=5),
        TraceCommand(timing.trcd, Command.RD, bank=0),
        TraceCommand(timing.tras, Command.PRE, bank=0),
    ]


class TestLegalTraces:
    def test_simple_cycle(self, ddr3_model):
        result = evaluate_trace(ddr3_model,
                                simple_trace(ddr3_model.device.timing))
        assert result.counts[Command.ACT] == 1
        assert result.counts[Command.RD] == 1
        assert result.counts[Command.PRE] == 1
        assert result.data_bits == ddr3_model.device.spec.bits_per_access

    def test_energy_decomposition(self, ddr3_model):
        timing = ddr3_model.device.timing
        result = evaluate_trace(ddr3_model, simple_trace(timing))
        expected = (ddr3_model.background_power * result.duration
                    + ddr3_model.operation_energy(Command.ACT)
                    + ddr3_model.operation_energy(Command.RD)
                    + ddr3_model.operation_energy(Command.PRE))
        assert result.energy == pytest.approx(expected)

    def test_row_hit_accounting(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0, row=1),
            TraceCommand(timing.trcd, Command.RD, bank=0),
            TraceCommand(timing.trcd + ns(5), Command.RD, bank=0),
            TraceCommand(timing.trcd + ns(10), Command.RD, bank=0),
            TraceCommand(timing.tras + ns(20), Command.PRE, bank=0),
        ]
        result = evaluate_trace(ddr3_model, trace)
        assert result.row_misses == 1
        assert result.row_hits == 2
        assert result.row_hit_rate == pytest.approx(2 / 3)

    def test_nops_are_free(self, ddr3_model):
        timing = ddr3_model.device.timing
        with_nop = simple_trace(timing)
        with_nop.insert(1, TraceCommand(ns(1), Command.NOP))
        base = evaluate_trace(ddr3_model, simple_trace(timing))
        padded = evaluate_trace(ddr3_model, with_nop)
        assert padded.energy == pytest.approx(base.energy)

    def test_multi_bank_interleaving(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = []
        for bank in range(4):
            start = bank * timing.trrd
            trace.append(TraceCommand(start, Command.ACT, bank=bank))
        for bank in range(4):
            trace.append(TraceCommand(
                3 * timing.trrd + timing.trcd + bank * ns(6),
                Command.RD, bank=bank,
            ))
        for bank in range(4):
            trace.append(TraceCommand(
                3 * timing.trrd + timing.tras + bank * ns(2),
                Command.PRE, bank=bank,
            ))
        result = evaluate_trace(ddr3_model, trace)
        assert result.counts[Command.ACT] == 4

    def test_average_current(self, ddr3_model):
        timing = ddr3_model.device.timing
        result = evaluate_trace(ddr3_model, simple_trace(timing))
        assert result.average_current == pytest.approx(
            result.average_power / ddr3_model.device.voltages.vdd
        )


class TestProtocolViolations:
    def test_read_on_idle_bank(self, ddr3_model):
        with pytest.raises(TraceError, match="idle bank"):
            evaluate_trace(ddr3_model,
                           [TraceCommand(ns(0), Command.RD, bank=0)])

    def test_activate_active_bank(self, ddr3_model):
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(ns(30), Command.ACT, bank=0),
        ]
        with pytest.raises(TraceError, match="already-active"):
            evaluate_trace(ddr3_model, trace)

    def test_precharge_idle_bank(self, ddr3_model):
        with pytest.raises(TraceError, match="idle bank"):
            evaluate_trace(ddr3_model,
                           [TraceCommand(ns(0), Command.PRE, bank=0)])

    def test_unknown_bank(self, ddr3_model):
        banks = ddr3_model.device.spec.banks
        with pytest.raises(TraceError, match="bank"):
            evaluate_trace(ddr3_model,
                           [TraceCommand(ns(0), Command.ACT, bank=banks)])

    def test_time_ordering_enforced(self, ddr3_model):
        trace = [
            TraceCommand(ns(10), Command.ACT, bank=0),
            TraceCommand(ns(5), Command.ACT, bank=1),
        ]
        with pytest.raises(TraceError, match="non-decreasing"):
            evaluate_trace(ddr3_model, trace)


class TestTimingViolations:
    def test_trcd(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(timing.trcd * 0.5, Command.RD, bank=0),
        ]
        with pytest.raises(TraceError, match="tRCD"):
            evaluate_trace(ddr3_model, trace)

    def test_tras(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(timing.tras * 0.5, Command.PRE, bank=0),
        ]
        with pytest.raises(TraceError, match="tRAS"):
            evaluate_trace(ddr3_model, trace)

    def test_trc(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(timing.tras, Command.PRE, bank=0),
            TraceCommand(timing.trc * 0.9, Command.ACT, bank=0),
        ]
        with pytest.raises(TraceError, match="tR"):
            evaluate_trace(ddr3_model, trace)

    def test_trrd(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(timing.trrd * 0.5, Command.ACT, bank=1),
        ]
        with pytest.raises(TraceError, match="tRRD"):
            evaluate_trace(ddr3_model, trace)

    def test_tfaw(self, ddr3_model):
        timing = ddr3_model.device.timing
        # Five activates spaced at exactly tRRD: the fifth violates tFAW
        # if 4 × tRRD < tFAW.
        assert 4 * timing.trrd < timing.tfaw
        trace = [TraceCommand(bank * timing.trrd, Command.ACT, bank=bank)
                 for bank in range(5)]
        with pytest.raises(TraceError, match="tFAW"):
            evaluate_trace(ddr3_model, trace)

    def test_lenient_mode_prices_anyway(self, ddr3_model):
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(ns(1), Command.RD, bank=0),  # tRCD violation
        ]
        result = evaluate_trace(ddr3_model, trace, strict=False)
        assert result.counts[Command.RD] == 1

    def test_error_reports_position(self, ddr3_model):
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(ns(1), Command.RD, bank=0),
        ]
        with pytest.raises(TraceError) as excinfo:
            evaluate_trace(ddr3_model, trace)
        assert excinfo.value.index == 1
