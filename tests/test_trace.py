"""Tests for the timed command-trace engine."""

import tracemalloc

import pytest

from repro.core.trace import (TraceAccumulator, TraceCommand, TraceError,
                              evaluate_trace)
from repro.description import Command
from repro.errors import ModelError


def ns(value):
    return value * 1e-9


def simple_trace(timing):
    """One legal row cycle with a read."""
    return [
        TraceCommand(ns(0), Command.ACT, bank=0, row=5),
        TraceCommand(timing.trcd, Command.RD, bank=0, row=5),
        TraceCommand(timing.tras, Command.PRE, bank=0),
    ]


class TestLegalTraces:
    def test_simple_cycle(self, ddr3_model):
        result = evaluate_trace(ddr3_model,
                                simple_trace(ddr3_model.device.timing))
        assert result.counts[Command.ACT] == 1
        assert result.counts[Command.RD] == 1
        assert result.counts[Command.PRE] == 1
        assert result.data_bits == ddr3_model.device.spec.bits_per_access

    def test_energy_decomposition(self, ddr3_model):
        timing = ddr3_model.device.timing
        result = evaluate_trace(ddr3_model, simple_trace(timing))
        expected = (ddr3_model.background_power * result.duration
                    + ddr3_model.operation_energy(Command.ACT)
                    + ddr3_model.operation_energy(Command.RD)
                    + ddr3_model.operation_energy(Command.PRE))
        assert result.energy == pytest.approx(expected)

    def test_row_hit_accounting(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0, row=1),
            TraceCommand(timing.trcd, Command.RD, bank=0, row=1),
            TraceCommand(timing.trcd + ns(5), Command.RD, bank=0, row=1),
            TraceCommand(timing.trcd + ns(10), Command.RD, bank=0,
                         row=1),
            TraceCommand(timing.tras + ns(20), Command.PRE, bank=0),
        ]
        result = evaluate_trace(ddr3_model, trace)
        assert result.row_misses == 1
        assert result.row_hits == 2
        assert result.row_hit_rate == pytest.approx(2 / 3)

    def test_nops_are_free(self, ddr3_model):
        timing = ddr3_model.device.timing
        with_nop = simple_trace(timing)
        with_nop.insert(1, TraceCommand(ns(1), Command.NOP))
        base = evaluate_trace(ddr3_model, simple_trace(timing))
        padded = evaluate_trace(ddr3_model, with_nop)
        assert padded.energy == pytest.approx(base.energy)

    def test_multi_bank_interleaving(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = []
        for bank in range(4):
            start = bank * timing.trrd
            trace.append(TraceCommand(start, Command.ACT, bank=bank))
        for bank in range(4):
            trace.append(TraceCommand(
                3 * timing.trrd + timing.trcd + bank * ns(6),
                Command.RD, bank=bank,
            ))
        for bank in range(4):
            trace.append(TraceCommand(
                3 * timing.trrd + timing.tras + bank * ns(2),
                Command.PRE, bank=bank,
            ))
        result = evaluate_trace(ddr3_model, trace)
        assert result.counts[Command.ACT] == 4

    def test_average_current(self, ddr3_model):
        timing = ddr3_model.device.timing
        result = evaluate_trace(ddr3_model, simple_trace(timing))
        assert result.average_current == pytest.approx(
            result.average_power / ddr3_model.device.voltages.vdd
        )


class TestProtocolViolations:
    def test_read_on_idle_bank(self, ddr3_model):
        with pytest.raises(TraceError, match="idle bank"):
            evaluate_trace(ddr3_model,
                           [TraceCommand(ns(0), Command.RD, bank=0)])

    def test_activate_active_bank(self, ddr3_model):
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(ns(30), Command.ACT, bank=0),
        ]
        with pytest.raises(TraceError, match="already-active"):
            evaluate_trace(ddr3_model, trace)

    def test_precharge_idle_bank(self, ddr3_model):
        with pytest.raises(TraceError, match="idle bank"):
            evaluate_trace(ddr3_model,
                           [TraceCommand(ns(0), Command.PRE, bank=0)])

    def test_unknown_bank(self, ddr3_model):
        banks = ddr3_model.device.spec.banks
        with pytest.raises(TraceError, match="bank"):
            evaluate_trace(ddr3_model,
                           [TraceCommand(ns(0), Command.ACT, bank=banks)])

    def test_time_ordering_enforced(self, ddr3_model):
        trace = [
            TraceCommand(ns(10), Command.ACT, bank=0),
            TraceCommand(ns(5), Command.ACT, bank=1),
        ]
        with pytest.raises(TraceError, match="non-decreasing"):
            evaluate_trace(ddr3_model, trace)


class TestTimingViolations:
    def test_trcd(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(timing.trcd * 0.5, Command.RD, bank=0),
        ]
        with pytest.raises(TraceError, match="tRCD"):
            evaluate_trace(ddr3_model, trace)

    def test_tras(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(timing.tras * 0.5, Command.PRE, bank=0),
        ]
        with pytest.raises(TraceError, match="tRAS"):
            evaluate_trace(ddr3_model, trace)

    def test_trc(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(timing.tras, Command.PRE, bank=0),
            TraceCommand(timing.trc * 0.9, Command.ACT, bank=0),
        ]
        with pytest.raises(TraceError, match="tR"):
            evaluate_trace(ddr3_model, trace)

    def test_trrd(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(timing.trrd * 0.5, Command.ACT, bank=1),
        ]
        with pytest.raises(TraceError, match="tRRD"):
            evaluate_trace(ddr3_model, trace)

    def test_tfaw(self, ddr3_model):
        timing = ddr3_model.device.timing
        # Five activates spaced at exactly tRRD: the fifth violates tFAW
        # if 4 × tRRD < tFAW.
        assert 4 * timing.trrd < timing.tfaw
        trace = [TraceCommand(bank * timing.trrd, Command.ACT, bank=bank)
                 for bank in range(5)]
        with pytest.raises(TraceError, match="tFAW"):
            evaluate_trace(ddr3_model, trace)

    def test_lenient_mode_prices_anyway(self, ddr3_model):
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(ns(1), Command.RD, bank=0),  # tRCD violation
        ]
        result = evaluate_trace(ddr3_model, trace, strict=False)
        assert result.counts[Command.RD] == 1

    def test_error_reports_position(self, ddr3_model):
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0),
            TraceCommand(ns(1), Command.RD, bank=0),
        ]
        with pytest.raises(TraceError) as excinfo:
            evaluate_trace(ddr3_model, trace)
        assert excinfo.value.index == 1


class TestStreamingEvaluation:
    """Regression: the fold must stream, never materialize (bug a)."""

    def test_generator_input_single_pass(self, ddr3_model):
        timing = ddr3_model.device.timing
        cycles = 2000

        def generated():
            for i in range(cycles):
                start = i * timing.trc
                yield TraceCommand(start, Command.ACT, bank=0,
                                   row=i % 7)
                yield TraceCommand(start + timing.tras, Command.PRE,
                                   bank=0)

        result = evaluate_trace(ddr3_model, generated())
        assert result.counts[Command.ACT] == cycles

    def test_generator_input_bounded_memory(self, ddr3_model):
        """A 100k-command generator must not be list()-ed: the old
        materializing path peaked at tens of MB here."""
        timing = ddr3_model.device.timing
        cycles = 50_000

        def generated():
            for i in range(cycles):
                start = i * timing.trc
                yield TraceCommand(start, Command.ACT, bank=0,
                                   row=i % 7)
                yield TraceCommand(start + timing.tras, Command.PRE,
                                   bank=0)

        tracemalloc.start()
        result = evaluate_trace(ddr3_model, generated())
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.counts[Command.ACT] == cycles
        assert peak < 2 * 1024 * 1024

    def test_chunked_accumulator_matches_oneshot(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = []
        for i in range(30):
            start = i * timing.trc
            trace.append(TraceCommand(start, Command.ACT, bank=0,
                                      row=i))
            trace.append(TraceCommand(start + timing.trcd, Command.RD,
                                      bank=0, row=i))
            trace.append(TraceCommand(start + timing.tras, Command.PRE,
                                      bank=0))
        one = evaluate_trace(ddr3_model, trace)
        accumulator = TraceAccumulator(ddr3_model)
        for i in range(0, len(trace), 7):
            accumulator.feed(trace[i:i + 7])
            accumulator.snapshot()  # snapshots must not disturb state
        two = accumulator.result()
        assert one.energy == two.energy
        assert one.breakdown.values == two.breakdown.values
        assert one.counts == two.counts
        assert one.duration == two.duration
        assert (one.row_hits, one.row_misses) == (two.row_hits,
                                                  two.row_misses)


class TestRowConflicts:
    """Regression: TraceCommand.row must actually be compared (bug b)."""

    def test_strict_raises_on_non_open_row(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0, row=1),
            TraceCommand(timing.trcd, Command.RD, bank=0, row=2),
        ]
        with pytest.raises(TraceError, match="row"):
            evaluate_trace(ddr3_model, trace)

    def test_lenient_counts_conflicts(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0, row=1),
            TraceCommand(timing.trcd, Command.RD, bank=0, row=2),
            TraceCommand(timing.trcd + ns(5), Command.RD, bank=0,
                         row=1),
            TraceCommand(timing.trcd + ns(10), Command.RD, bank=0,
                         row=1),
        ]
        result = evaluate_trace(ddr3_model, trace, strict=False)
        assert result.row_conflicts == 1
        assert result.row_misses == 1
        # The row=1 accesses: first consumes the activate, second hits.
        assert result.row_hits == 1
        assert result.row_hit_rate == pytest.approx(1 / 3)

    def test_accesses_without_activate_are_not_hits(self, ddr3_model):
        """The old code counted every column access as a hit candidate;
        accesses with no open row must not inflate the hit rate."""
        trace = [TraceCommand(ns(i * 10), Command.RD, bank=0, row=3)
                 for i in range(4)]
        result = evaluate_trace(ddr3_model, trace, strict=False)
        assert result.row_hits == 0
        assert result.row_conflicts == 4
        assert result.row_hit_rate == 0.0


class TestRefresh:
    """Regression: the documented REF pricing must exist (bug c)."""

    def test_ref_command_and_aliases(self):
        assert Command("ref") is Command.REF
        assert TraceCommand(0.0, "refresh").command is Command.REF
        assert TraceCommand(0.0, "ref").command is Command.REF

    def test_ref_priced_as_row_cycles(self, ddr3_model):
        timing = ddr3_model.device.timing
        at = 1e-6
        result = evaluate_trace(ddr3_model,
                                [TraceCommand(at, Command.REF)])
        expected = (ddr3_model.background_power * result.duration
                    + timing.rows_per_refresh
                    * (ddr3_model.operation_energy(Command.ACT)
                       + ddr3_model.operation_energy(Command.PRE)))
        assert result.counts[Command.REF] == 1
        assert result.energy == pytest.approx(expected)

    def test_ref_on_active_bank_strict(self, ddr3_model):
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0, row=1),
            TraceCommand(ns(50), Command.REF, bank=0),
        ]
        with pytest.raises(TraceError, match="refresh on active"):
            evaluate_trace(ddr3_model, trace)

    def test_trfc_enforced_after_refresh(self, ddr3_model):
        timing = ddr3_model.device.timing
        trace = [
            TraceCommand(ns(0), Command.REF, bank=0),
            TraceCommand(timing.trfc * 0.5, Command.ACT, bank=0),
        ]
        with pytest.raises(TraceError, match="tRFC"):
            evaluate_trace(ddr3_model, trace)

    def test_lenient_ref_closes_row(self, ddr3_model):
        trace = [
            TraceCommand(ns(0), Command.ACT, bank=0, row=1),
            TraceCommand(ns(50), Command.REF, bank=0),
            TraceCommand(ns(100), Command.RD, bank=0, row=1),
        ]
        result = evaluate_trace(ddr3_model, trace, strict=False)
        # The refresh precharged the bank: the read is a conflict.
        assert result.row_conflicts == 1


class TestValidationConsistency:
    """Regression: validation raises TraceError, and lenient mode
    tolerates out-of-order timestamps (bug d)."""

    def test_negative_time_is_trace_error(self):
        with pytest.raises(TraceError, match="time"):
            TraceCommand(-1e-9, Command.ACT)

    def test_negative_bank_is_trace_error(self):
        with pytest.raises(TraceError, match="bank"):
            TraceCommand(0.0, Command.ACT, bank=-1)

    def test_validation_errors_stay_model_errors(self):
        """Back-compat: callers catching ModelError keep working."""
        with pytest.raises(ModelError):
            TraceCommand(-1e-9, Command.ACT)

    def test_lenient_clamps_out_of_order_times(self, ddr3_model):
        disordered = [
            TraceCommand(ns(100), Command.ACT, bank=0, row=1),
            TraceCommand(ns(40), Command.ACT, bank=1, row=2),
            TraceCommand(ns(150), Command.ACT, bank=2, row=3),
        ]
        result = evaluate_trace(ddr3_model, disordered, strict=False)
        assert result.counts[Command.ACT] == 3
        # The straggler is clamped to the latest time seen (100 ns),
        # so pricing matches the explicitly clamped trace.
        clamped = [
            TraceCommand(ns(100), Command.ACT, bank=0, row=1),
            TraceCommand(ns(100), Command.ACT, bank=1, row=2),
            TraceCommand(ns(150), Command.ACT, bank=2, row=3),
        ]
        reference = evaluate_trace(ddr3_model, clamped, strict=False)
        assert result.energy == reference.energy
        assert result.duration == reference.duration


class TestActWindowCost:
    """The tFAW/tRRD window must cost O(1) per ACT.

    The old implementation filtered a growing list of every ACT ever
    seen three times per activate — O(n²) on ACT-dense traces.  The
    deque-based window is bounded by the tFAW depth in strict mode
    and empty in lenient mode.
    """

    def _act_trace(self, timing, count):
        for i in range(count):
            start = i * timing.trc
            yield TraceCommand(start, Command.ACT, bank=i % 4,
                               row=i % 7)
            yield TraceCommand(start + timing.tras, Command.PRE,
                               bank=i % 4)

    def test_lenient_act_dense_bounded_memory(self, ddr3_model):
        timing = ddr3_model.device.timing
        count = 50_000
        tracemalloc.start()
        accumulator = TraceAccumulator(ddr3_model, strict=False)
        accumulator.feed(self._act_trace(timing, count))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert accumulator.counts[Command.ACT] == count
        # Lenient replay keeps no ACT history at all.
        assert len(accumulator._act_window) == 0
        assert peak < 2 * 1024 * 1024

    def test_strict_window_stays_bounded(self, ddr3_model):
        timing = ddr3_model.device.timing
        accumulator = TraceAccumulator(ddr3_model, strict=True)
        accumulator.feed(self._act_trace(timing, 500))
        # Expired activates are pruned as they age out, so the window
        # never exceeds the tFAW depth.
        assert len(accumulator._act_window) <= 4

    def test_strict_still_catches_tfaw(self, ddr3_model):
        timing = ddr3_model.device.timing
        gap = max(timing.trrd, timing.trrd_l) + ns(1)
        trace = [TraceCommand(i * gap, Command.ACT, bank=i, row=1)
                 for i in range(5)]
        if 4 * gap < timing.tfaw:
            with pytest.raises(TraceError, match="tFAW"):
                evaluate_trace(ddr3_model, trace, strict=True)


class TestStateExportAndMerge:
    """Shard merge: export_state/merge_state reproduce serial replay
    bit for bit when bank sets are disjoint."""

    def _bank_trace(self, timing, bank, rows=40):
        trace = []
        for i in range(rows):
            start = i * timing.trc
            trace.append(TraceCommand(start, Command.ACT, bank=bank,
                                      row=i % 9))
            trace.append(TraceCommand(start + timing.trcd, Command.RD,
                                      bank=bank, row=i % 9))
        return trace

    def test_merge_matches_serial(self, ddr3_model):
        timing = ddr3_model.device.timing
        left = self._bank_trace(timing, bank=0)
        right = self._bank_trace(timing, bank=1)
        serial = TraceAccumulator(ddr3_model, strict=False)
        serial.feed(sorted(left + right, key=lambda c: c.time))
        one = TraceAccumulator(ddr3_model, strict=False).feed(left)
        two = TraceAccumulator(ddr3_model, strict=False).feed(right)
        merged = one.merge(two)
        assert merged is one
        expect = serial.result()
        got = merged.result()
        assert got.energy == expect.energy
        assert got.duration == expect.duration
        assert got.counts == expect.counts
        assert got.row_hits == expect.row_hits
        assert merged.commands_seen == serial.commands_seen

    def test_state_survives_json_round_trip(self, ddr3_model):
        import json

        timing = ddr3_model.device.timing
        one = TraceAccumulator(ddr3_model, strict=False)
        one.feed(self._bank_trace(timing, bank=0))
        two = TraceAccumulator(ddr3_model, strict=False)
        two.feed(self._bank_trace(timing, bank=1))
        direct = TraceAccumulator(ddr3_model, strict=False)
        direct.merge(one)
        direct.merge(two)
        wired = TraceAccumulator(ddr3_model, strict=False)
        for shard in (one, two):
            wired.merge_state(json.loads(
                json.dumps(shard.export_state())))
        assert wired.result().energy == direct.result().energy
        assert wired.export_state() == direct.export_state()

    def test_strict_accumulators_refuse_merge(self, ddr3_model):
        strict = TraceAccumulator(ddr3_model, strict=True)
        lenient = TraceAccumulator(ddr3_model, strict=False)
        with pytest.raises(TraceError, match="strict"):
            strict.merge(lenient)
        with pytest.raises(TraceError, match="strict"):
            strict.export_state()

    def test_overlapping_banks_refuse_merge(self, ddr3_model):
        timing = ddr3_model.device.timing
        one = TraceAccumulator(ddr3_model, strict=False)
        one.feed(self._bank_trace(timing, bank=0))
        two = TraceAccumulator(ddr3_model, strict=False)
        two.feed(self._bank_trace(timing, bank=0))
        with pytest.raises(TraceError, match="overlap"):
            one.merge(two)

    def test_device_mismatch_refuses_merge(self, ddr3_model,
                                           ddr5_model):
        one = TraceAccumulator(ddr3_model, strict=False)
        two = TraceAccumulator(ddr5_model, strict=False)
        with pytest.raises(TraceError, match="cannot merge"):
            one.merge(two)
