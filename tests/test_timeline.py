"""Tests for trace power profiles and scheduler latency/refresh features."""

import pytest

from repro.core.timeline import power_profile
from repro.core.trace import TraceCommand, evaluate_trace
from repro.description import Command
from repro.errors import ModelError
from repro.workloads import OpenPageScheduler, Request, random_trace


class TestPowerProfile:
    def _trace(self, model):
        timing = model.device.timing
        return [
            TraceCommand(0.0, Command.ACT, bank=0),
            TraceCommand(timing.trcd, Command.RD, bank=0),
            TraceCommand(timing.tras, Command.PRE, bank=0),
        ]

    def test_energy_conserved(self, ddr3_model):
        trace = self._trace(ddr3_model)
        profile = power_profile(ddr3_model, trace, bin_width=1e-9)
        binned = sum(p - ddr3_model.background_power
                     for p in profile.power) * profile.bin_width
        expected = (ddr3_model.operation_energy(Command.ACT)
                    + ddr3_model.operation_energy(Command.RD)
                    + ddr3_model.operation_energy(Command.PRE))
        assert binned == pytest.approx(expected, rel=0.02)

    def test_idle_bins_show_background(self, ddr3_model):
        trace = [TraceCommand(0.0, Command.ACT, bank=0),
                 TraceCommand(200e-9, Command.PRE, bank=0)]
        profile = power_profile(ddr3_model, trace, bin_width=5e-9)
        # Between the activate window and the precharge the power floor
        # is the background.
        mid = profile.power[len(profile.power) // 2]
        assert mid == pytest.approx(ddr3_model.background_power)

    def test_activate_bins_spike(self, ddr3_model):
        trace = self._trace(ddr3_model)
        profile = power_profile(ddr3_model, trace, bin_width=1e-9)
        assert profile.peak > 2.5 * ddr3_model.background_power
        assert profile.crest_factor > 1.5

    def test_times_match_bins(self, ddr3_model):
        profile = power_profile(ddr3_model, self._trace(ddr3_model),
                                bin_width=2e-9)
        times = profile.times()
        assert len(times) == len(profile.power)
        assert times[0] == pytest.approx(1e-9)

    def test_rejects_empty_trace(self, ddr3_model):
        with pytest.raises(ModelError):
            power_profile(ddr3_model, [])

    def test_rejects_bad_bin_width(self, ddr3_model):
        with pytest.raises(ModelError):
            power_profile(ddr3_model, self._trace(ddr3_model),
                          bin_width=0.0)


class TestSchedulerLatency:
    def test_latencies_recorded(self, ddr3_device):
        scheduler = OpenPageScheduler(ddr3_device)
        scheduler.extend([Request(0, 1), Request(0, 1), Request(0, 2)])
        scheduler.finalize()
        assert len(scheduler.latencies) == 3
        # The first access pays activate + tRCD + burst.
        timing = ddr3_device.timing
        burst = (ddr3_device.spec.burst_length
                 / ddr3_device.spec.datarate)
        assert scheduler.latencies[0] == pytest.approx(
            timing.trcd + burst)
        # A row hit is faster than a row conflict.
        assert scheduler.latencies[1] < scheduler.latencies[2]

    def test_conflict_latency_includes_precharge(self, ddr3_device):
        scheduler = OpenPageScheduler(ddr3_device)
        scheduler.extend([Request(0, 1), Request(0, 2)])
        scheduler.finalize()
        timing = ddr3_device.timing
        assert scheduler.latencies[1] > timing.trp + timing.trcd


class TestRefreshInjection:
    def test_refresh_bank_issues_row_cycle(self, ddr3_device,
                                           ddr3_model):
        scheduler = OpenPageScheduler(ddr3_device)
        scheduler.add(Request(0, 1))
        scheduler.refresh_bank(0)
        trace = scheduler.finalize()
        result = evaluate_trace(ddr3_model, trace, strict=True)
        assert result.counts[Command.ACT] == 2  # request + refresh

    def test_refreshed_trace_stays_legal(self, ddr3_device, ddr3_model):
        trace = random_trace(ddr3_device, 500, with_refresh=True,
                             seed=5)
        result = evaluate_trace(ddr3_model, trace, strict=True)
        assert result.counts[Command.RD] + result.counts[Command.WR] \
            == 500

    def test_refresh_adds_row_cycles(self, ddr3_device, ddr3_model):
        base = evaluate_trace(
            ddr3_model, random_trace(ddr3_device, 500, seed=5))
        refreshed = evaluate_trace(
            ddr3_model,
            random_trace(ddr3_device, 500, with_refresh=True, seed=5))
        assert refreshed.counts[Command.ACT] \
            >= base.counts[Command.ACT]
