"""Tests for rank/module-level power composition."""

import pytest

from repro.devices import build_device
from repro.errors import ModelError
from repro.system import ModulePowerModel, RankConfig, mini_rank_study


@pytest.fixture(scope="module")
def x8_device():
    """An x8 device: eight of them form a 64-bit rank."""
    return build_device(55, io_width=8)


@pytest.fixture(scope="module")
def single_rank(x8_device):
    return ModulePowerModel(RankConfig(x8_device, devices_per_rank=8))


@pytest.fixture(scope="module")
def dual_rank(x8_device):
    return ModulePowerModel(
        RankConfig(x8_device, devices_per_rank=8, ranks=2)
    )


class TestRankConfig:
    def test_channel_width(self, x8_device):
        config = RankConfig(x8_device, devices_per_rank=8)
        assert config.channel_width == 64

    def test_validation(self, x8_device):
        with pytest.raises(ModelError):
            RankConfig(x8_device, devices_per_rank=0)
        with pytest.raises(ModelError):
            RankConfig(x8_device, devices_per_rank=8, ranks=0)


class TestLockstep:
    def test_module_power_scales_with_devices(self, single_rank,
                                              x8_device):
        from repro.core import DramPowerModel
        from repro.core.idd import idd7_mixed
        device_power = idd7_mixed(DramPowerModel(x8_device)).power
        result = single_rank.lockstep_power()
        assert result.power == pytest.approx(8 * device_power, rel=0.01)

    def test_idle_rank_costs_power_down(self, single_rank, dual_rank):
        one = single_rank.lockstep_power()
        two = dual_rank.lockstep_power(park_idle_ranks=True)
        assert two.power > one.power
        assert two.parked_devices == 8
        # Parked rank costs far less than an active one.
        assert two.power < 1.35 * one.power

    def test_unparked_idle_rank_costs_more(self, dual_rank):
        parked = dual_rank.lockstep_power(park_idle_ranks=True)
        standby = dual_rank.lockstep_power(park_idle_ranks=False)
        assert standby.power > parked.power

    def test_bandwidth_is_channel_level(self, single_rank, x8_device):
        result = single_rank.lockstep_power()
        assert result.bandwidth <= 8 * x8_device.spec.peak_bandwidth
        assert result.bandwidth > 0


class TestMiniRank:
    def test_saves_module_power_at_same_bandwidth(self, single_rank):
        base = single_rank.lockstep_power(park_idle_ranks=False)
        mini = single_rank.mini_rank_power(2)
        assert mini.bandwidth == pytest.approx(base.bandwidth)
        assert mini.power < base.power

    def test_row_energy_divides(self, single_rank):
        base = single_rank.lockstep_power(park_idle_ranks=False)
        mini2 = single_rank.mini_rank_power(2)
        mini4 = single_rank.mini_rank_power(4)
        # Savings grow with the divisor but saturate (column +
        # background are conserved).
        saving2 = base.power - mini2.power
        saving4 = base.power - mini4.power
        assert saving4 > saving2
        assert saving4 < 2.5 * saving2

    def test_active_devices_reported(self, single_rank):
        assert single_rank.mini_rank_power(4).active_devices == 2

    def test_divisor_must_split_rank(self, single_rank):
        with pytest.raises(ModelError):
            single_rank.mini_rank_power(3)

    def test_study_helper(self, x8_device):
        results = mini_rank_study(x8_device, divisors=(1, 2, 4))
        energies = [results[k].energy_per_bit for k in (1, 2, 4)]
        assert energies[0] > energies[1] > energies[2]
