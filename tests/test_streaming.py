"""Streaming NDJSON mode: framing, incrementality, parity, aborts."""

import json
import socket
import struct
import threading
import time

import pytest

from repro.client import ServiceClient
from repro.engine import EvaluationSession
from repro.errors import ServiceError
from repro.service import create_service
from repro.service.admission import Deadline, DeadlineSession
from repro.service.jsonapi import evaluate_payload, sweep_payload
from repro.service.streaming import (evaluate_stream, sweep_stream,
                                     wants_stream)


@pytest.fixture()
def service():
    svc = create_service(host="127.0.0.1", port=0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=5)
    assert not thread.is_alive()


@pytest.fixture()
def client(service):
    return ServiceClient(f"http://127.0.0.1:{service.server_port}")


@pytest.fixture()
def session():
    return EvaluationSession(capacity=16)


# ----------------------------------------------------------------------
# Generator layer (no HTTP).
# ----------------------------------------------------------------------
class TestGenerators:
    def test_wants_stream(self):
        assert wants_stream({"stream": True})
        assert not wants_stream({"stream": 1})
        assert not wants_stream({})
        assert not wants_stream([])

    def test_evaluate_stream_matches_buffered(self, session):
        payload = {"devices": [{}, {"node": 44}]}
        records = list(evaluate_stream(session, dict(payload)))
        buffered = evaluate_payload(session, payload)
        assert records[-1] == {"done": True, "count": 2}
        assert [r["result"] for r in records[:-1]] \
            == buffered["results"]
        assert [r["index"] for r in records[:-1]] == [0, 1]

    def test_sweep_stream_corners_matches_buffered(self, session):
        payload = {"kind": "corners", "device": {}}
        rows = [r["row"] for r in
                sweep_stream(session, dict(payload, stream=True))
                if "row" in r]
        buffered = sweep_payload(session, payload)
        assert rows == buffered["rows"]

    def test_sweep_stream_sensitivity_same_row_set(self, session):
        # Streaming yields in parameter order, buffered sorts by
        # impact — the row *contents* must still match exactly.
        # Backend pinned: "auto" may fold the buffered sweep through
        # the vector kernel, which differs from serial at ~1e-15.
        payload = {"kind": "sensitivity", "device": {},
                   "backend": "serial"}
        rows = [r["row"] for r in
                sweep_stream(session, dict(payload)) if "row" in r]
        buffered = sweep_payload(session, payload)["rows"]
        key = lambda row: json.dumps(row, sort_keys=True)
        assert sorted(rows, key=key) == sorted(buffered, key=key)

    def test_validation_is_eager(self, session):
        with pytest.raises(ServiceError):
            evaluate_stream(session, {"devices": []})
        with pytest.raises(ServiceError):
            evaluate_stream(session, {"device": {}, "pattern": 7})
        with pytest.raises(ServiceError):
            sweep_stream(session, {"kind": "bogus"})
        with pytest.raises(ServiceError):
            sweep_stream(session, {"kind": "sensitivity",
                                   "device": {"nope": 1}})

    def test_mid_stream_error_becomes_record(self, session):
        deadline = Deadline(1e-6)
        time.sleep(0.01)
        wrapped = DeadlineSession(session, deadline)
        records = list(evaluate_stream(wrapped, {"device": {}}))
        assert len(records) == 1
        assert records[0]["index"] == 0
        assert records[0]["status"] == 504
        assert "error" in records[0]


# ----------------------------------------------------------------------
# HTTP layer.
# ----------------------------------------------------------------------
def _raw_stream_exchange(port, payload):
    """One streaming POST over a raw socket; returns (headers, body)."""
    blob = json.dumps(payload).encode()
    request = (b"POST /sweep HTTP/1.1\r\n"
               b"Host: 127.0.0.1\r\n"
               b"Content-Type: application/json\r\n"
               b"Content-Length: %d\r\n\r\n%s" % (len(blob), blob))
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=30) as sock:
        sock.sendall(request)
        sock.settimeout(30)
        data = b""
        while b"\r\n\r\n" not in data:
            data += sock.recv(65536)
        headers, _, body = data.partition(b"\r\n\r\n")
        while not body.endswith(b"0\r\n\r\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            body += chunk
    return headers.decode("latin-1"), body


def _parse_chunks(body):
    """Decode chunked transfer framing; returns the chunk payloads."""
    chunks = []
    rest = body
    while rest:
        size_line, _, rest = rest.partition(b"\r\n")
        size = int(size_line, 16)
        if size == 0:
            break
        chunks.append(rest[:size])
        assert rest[size:size + 2] == b"\r\n"
        rest = rest[size + 2:]
    return chunks


class TestStreamingHttp:
    def test_chunk_framing_and_content_type(self, service):
        headers, body = _raw_stream_exchange(
            service.server_port,
            {"kind": "corners", "device": {}, "stream": True})
        assert " 200 " in headers.splitlines()[0]
        assert "application/x-ndjson" in headers
        assert "Transfer-Encoding: chunked" in headers
        assert "Content-Length" not in headers
        chunks = _parse_chunks(body)
        records = [json.loads(chunk) for chunk in chunks]
        assert all(chunk.endswith(b"\n") for chunk in chunks)
        assert records[-1]["done"] is True
        assert records[-1]["count"] == len(records) - 1
        assert all("row" in r for r in records[:-1])

    def test_first_record_arrives_before_sweep_completes(
            self, service, client):
        # The trends sweep cold-builds one model per roadmap node;
        # the stream must hand over row 0 while the admission slot is
        # still held by the ongoing sweep.
        stream = client.sweep_stream("trends")
        first = next(stream)
        assert first["index"] == 0
        probe = ServiceClient(
            f"http://127.0.0.1:{service.server_port}")
        stats = probe.stats()
        assert stats["admission"]["in_flight"] >= 1, \
            "sweep already finished before the first record"
        assert stats["streams"] == 1
        rest = list(stream)
        assert rest[-1]["done"] is True
        assert rest[-1]["count"] >= 10

    def test_streamed_evaluate_matches_buffered_over_http(
            self, client):
        devices = [{"node": 55}, {"node": 44}, {}]
        records = list(client.evaluate_stream(devices=devices))
        buffered = client.evaluate(devices=devices)
        assert [r["result"] for r in records[:-1]] \
            == buffered["results"]
        assert records[-1]["count"] == 3

    def test_streamed_error_request_is_plain_json_error(
            self, client):
        with pytest.raises(ServiceError) as err:
            client.sweep_stream("bogus")
        assert err.value.status == 400

    def test_mid_stream_disconnect_counts_abort(self, service):
        payload = json.dumps({"kind": "trends",
                              "stream": True}).encode()
        request = (b"POST /sweep HTTP/1.1\r\n"
                   b"Host: 127.0.0.1\r\n"
                   b"Content-Type: application/json\r\n"
                   b"Content-Length: %d\r\n\r\n%s"
                   % (len(payload), payload))
        sock = socket.create_connection(
            ("127.0.0.1", service.server_port), timeout=30)
        sock.sendall(request)
        sock.settimeout(30)
        sock.recv(1)  # wait for the stream to actually start
        # Hard reset (RST) mid-stream: the server's next chunk write
        # must fail and be tallied, not crash the daemon.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        sock.close()
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if service.counters.stream_aborts >= 1:
                break
            time.sleep(0.05)
        assert service.counters.stream_aborts >= 1
        # The service must still answer normally afterwards.
        probe = ServiceClient(
            f"http://127.0.0.1:{service.server_port}")
        assert probe.healthz()["status"] == "ok"


# ----------------------------------------------------------------------
# Dedicated-connection hygiene of client streams.
# ----------------------------------------------------------------------
class TestDedicatedConnectionClose:
    """Streams run on dedicated (non-pooled) connections; the client
    must release them *eagerly* when the stream logically ends — on
    the terminal record, an in-band error record, or an explicit
    abandon — never leaving a socket open until garbage collection.
    """

    def test_closed_after_terminal_record(self, client):
        stream = client.evaluate_stream(devices=[{}, {"node": 65}])
        records = list(stream)
        assert records[-1]["done"] is True
        assert stream.closed is True
        assert stream._conn.sock is None  # socket really released

    def test_closed_on_mid_stream_error_record(self, client):
        # The second trace line is unparsable: the server emits
        # snapshot-less records then an in-band error record.
        stream = client.trace_stream(
            b"0x0 READ 0\n0x10 BOGUS 5\n", device={"node": 55})
        records = list(stream)
        assert "error" in records[-1]
        assert records[-1]["status"] == 400
        assert stream.closed is True
        assert stream._conn.sock is None

    def test_abandoned_stream_closes_idempotently(self, client):
        stream = client.sweep_stream("schemes")
        first = next(stream)
        assert "row" in first
        stream.close()
        assert stream.closed is True
        stream.close()  # idempotent
        with pytest.raises(StopIteration):
            next(stream)

    def test_error_status_never_leaks_a_connection(self, client):
        opened_before = client.connections_opened
        with pytest.raises(ServiceError) as caught:
            client.evaluate_stream(device={"node": 999})
        assert caught.value.status == 400
        assert client.connections_opened == opened_before + 1
