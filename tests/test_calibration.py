"""Tests for the datasheet calibration fitter."""

import pytest

from repro import DramPowerModel
from repro.analysis.calibration import (
    CalibrationResult,
    CalibrationTarget,
    calibrate_logic,
)
from repro.core.idd import IddMeasure, measure
from repro.errors import ModelError


def targets_from_model(model, scale=1.0):
    """Targets derived from the model itself, optionally scaled."""
    return [
        CalibrationTarget(which,
                          measure(model, which).milliamps * scale)
        for which in (IddMeasure.IDD0, IddMeasure.IDD2N,
                      IddMeasure.IDD4R, IddMeasure.IDD4W)
    ]


class TestTargets:
    def test_rejects_non_positive_current(self):
        with pytest.raises(ModelError):
            CalibrationTarget(IddMeasure.IDD0, 0.0)

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ModelError):
            CalibrationTarget(IddMeasure.IDD0, 50.0, weight=0.0)

    def test_string_measure_coerced(self):
        target = CalibrationTarget("idd4r", 150.0)
        assert target.measure is IddMeasure.IDD4R


class TestCalibration:
    def test_already_calibrated_device_stays_put(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        result = calibrate_logic(ddr3_device, targets_from_model(model))
        assert result.final_error <= result.initial_error + 1e-12
        assert result.initial_error == pytest.approx(0.0, abs=1e-9)

    def test_fits_inflated_targets(self, ddr3_device):
        # Ask for 30 % more current everywhere: the fitter must close
        # most of the gap by growing the logic blocks.
        model = DramPowerModel(ddr3_device)
        result = calibrate_logic(ddr3_device,
                                 targets_from_model(model, scale=1.3))
        assert result.improved
        assert result.final_error < 0.5 * result.initial_error
        assert any(factor > 1.0
                   for factor in result.scale_factors.values())

    def test_fits_deflated_targets(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        result = calibrate_logic(ddr3_device,
                                 targets_from_model(model, scale=0.75))
        assert result.improved
        assert any(factor < 1.0
                   for factor in result.scale_factors.values())

    def test_residuals_near_one_after_fit(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        result = calibrate_logic(ddr3_device,
                                 targets_from_model(model, scale=1.2))
        for which, ratio in result.residuals.items():
            assert 0.8 < ratio < 1.25, which

    def test_bounds_respected(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        # An absurd 10x target cannot push factors beyond the bound.
        result = calibrate_logic(ddr3_device,
                                 targets_from_model(model, scale=10.0),
                                 bounds=(0.5, 2.0))
        for factor in result.scale_factors.values():
            assert 0.5 <= factor <= 2.0

    def test_device_unchanged_outside_fit_blocks(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        result = calibrate_logic(ddr3_device,
                                 targets_from_model(model, scale=1.2),
                                 blocks=("control",))
        fitted = result.device
        assert fitted.technology == ddr3_device.technology
        for name in ("datapath", "interface", "collogic"):
            assert (fitted.logic_block(name).n_gates
                    == ddr3_device.logic_block(name).n_gates)

    def test_needs_targets(self, ddr3_device):
        with pytest.raises(ModelError):
            calibrate_logic(ddr3_device, [])

    def test_needs_valid_blocks(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        with pytest.raises(ModelError):
            calibrate_logic(ddr3_device, targets_from_model(model),
                            blocks=("nonexistent",))

    def test_result_type(self, ddr3_device):
        model = DramPowerModel(ddr3_device)
        result = calibrate_logic(ddr3_device, targets_from_model(model),
                                 iterations=2)
        assert isinstance(result, CalibrationResult)
        assert set(result.scale_factors) <= {
            "control", "rowlogic", "collogic", "datapath", "interface",
            "dll",
        }
