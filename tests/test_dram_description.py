"""Tests for the aggregate DramDescription and its path helpers."""

import pytest

from repro.errors import DescriptionError
from repro.devices import build_device


class TestDerivedOrganisation:
    def test_ddr3_organisation(self, ddr3_device):
        # 2 Gb x16: 16 kb page over 512-bit sub-wordlines → 32 SWLs rise.
        assert ddr3_device.swls_per_activate == 32
        # 128-bit access over 16-bit CSL groups → 8 CSLs assert.
        assert ddr3_device.csls_per_access == 8
        assert ddr3_device.blocks_per_bank == 1
        assert ddr3_device.page_bits_per_block == 16384

    def test_sdr_page_splits_over_two_blocks(self, sdr_device):
        # 4 banks on the 8-block floorplan: each page spans two blocks.
        assert sdr_device.blocks_per_bank == 2
        assert (sdr_device.page_bits_per_block * 2
                == sdr_device.spec.page_bits)

    def test_ddr5_banks_stack_in_blocks(self, ddr5_device):
        # 32 banks on 8 blocks: four banks per block.
        assert ddr5_device.banks_per_array_block == 4.0
        assert ddr5_device.blocks_per_bank == 1

    def test_density_label(self, ddr3_device, sdr_device):
        assert ddr3_device.density_label == "2G"
        assert sdr_device.density_label == "128M"

    def test_summary_keys(self, ddr3_device):
        summary = ddr3_device.summary()
        assert summary["density"] == "2G"
        assert summary["banks"] == 8
        assert summary["datarate_gbps"] == pytest.approx(1.6)


class TestCrossValidation:
    def test_access_must_fit_page(self, ddr3_device):
        # Shrinking the page below one access must fail validation.
        with pytest.raises(DescriptionError):
            ddr3_device.replace_path("spec.col_bits", 2)

    def test_page_must_align_to_swl(self, ddr3_device):
        with pytest.raises(DescriptionError):
            ddr3_device.replace_path("floorplan.array.bits_per_swl", 4096
                                     * 16)

    def test_access_must_align_to_csl(self, ddr3_device):
        with pytest.raises(DescriptionError):
            ddr3_device.replace_path("technology.bits_per_csl", 48)

    def test_duplicate_logic_names_rejected(self, ddr3_device):
        blocks = ddr3_device.logic_blocks
        with pytest.raises(DescriptionError):
            ddr3_device.evolve(logic_blocks=blocks + (blocks[0],))


class TestPathHelpers:
    def test_get_path(self, ddr3_device):
        assert ddr3_device.get_path("voltages.vint") == pytest.approx(1.4)
        assert ddr3_device.get_path("technology.c_cell") > 0

    def test_replace_path_voltages(self, ddr3_device):
        modified = ddr3_device.replace_path("voltages.vint", 1.2)
        assert modified.voltages.vint == 1.2
        assert ddr3_device.voltages.vint == pytest.approx(1.4)

    def test_replace_path_technology(self, ddr3_device):
        modified = ddr3_device.replace_path("technology.c_bitline", 50e-15)
        assert modified.technology.c_bitline == pytest.approx(50e-15)

    def test_replace_path_floorplan_array(self, ddr3_device):
        modified = ddr3_device.replace_path(
            "floorplan.array.bits_per_swl", 256
        )
        assert modified.floorplan.array.bits_per_swl == 256

    def test_replace_path_top_level(self, ddr3_device):
        modified = ddr3_device.replace_path("constant_current", 1e-3)
        assert modified.constant_current == pytest.approx(1e-3)

    def test_replace_unknown_root_rejected(self, ddr3_device):
        with pytest.raises(DescriptionError):
            ddr3_device.replace_path("nonsense.vint", 1.0)

    def test_scale_path_float(self, ddr3_device):
        modified = ddr3_device.scale_path("technology.c_bitline", 1.2)
        assert modified.technology.c_bitline == pytest.approx(
            1.2 * ddr3_device.technology.c_bitline
        )

    def test_scale_path_int_rounds(self, ddr3_device):
        modified = ddr3_device.scale_path("spec.io_width", 0.5)
        assert modified.spec.io_width == 8

    def test_scale_path_rejects_non_numeric(self, ddr3_device):
        with pytest.raises(DescriptionError):
            ddr3_device.scale_path("name", 2.0)

    def test_logic_block_lookup(self, ddr3_device):
        assert ddr3_device.logic_block("control").name == "control"
        with pytest.raises(KeyError):
            ddr3_device.logic_block("nonexistent")


class TestBuilderConsistency:
    def test_density_matches_request(self):
        device = build_device(65, interface="DDR3", density_bits=1 << 30,
                              io_width=8, datarate=1066e6)
        assert device.spec.density_bits == 1 << 30
        assert device.spec.io_width == 8

    def test_name_autogeneration(self):
        device = build_device(55)
        assert "DDR3" in device.name
        assert "55nm" in device.name
