"""Tests for the reconstructed vendor datasheet database."""

import pytest

from repro.core.idd import IddMeasure
from repro.datasheets import (
    DDR2_1G_POINTS,
    DDR3_1G_POINTS,
    VENDORS,
    ddr2_points,
    ddr3_points,
)
from repro.datasheets.idd import spread


class TestDatabaseShape:
    def test_five_vendors(self):
        assert len(VENDORS) == 5
        assert {"Samsung", "Hynix", "Micron", "Elpida",
                "Qimonda"} == set(VENDORS)

    def test_point_counts(self):
        # 3 measures × 4 rates × 3 widths × 5 vendors.
        assert len(DDR2_1G_POINTS) == 180
        assert len(DDR3_1G_POINTS) == 180

    def test_labels_match_paper_style(self):
        point = ddr2_points(IddMeasure.IDD0, 533e6, 4)[0]
        assert point.label == "idd0 533 x4"

    def test_filtering(self):
        points = ddr3_points(measure=IddMeasure.IDD4R, io_width=16)
        assert len(points) == 20  # 4 rates × 5 vendors
        assert all(p.measure is IddMeasure.IDD4R for p in points)
        assert all(p.io_width == 16 for p in points)

    def test_spread_helper(self):
        points = ddr3_points(IddMeasure.IDD4R, 1600e6, 16)
        low, mean, high = spread(points)
        assert low < mean < high

    def test_spread_rejects_empty(self):
        with pytest.raises(ValueError):
            spread([])


class TestDatabaseShapeInvariants:
    """The orderings that Figure 8/9 must show."""

    def test_idd4_grows_with_datarate(self):
        for points_fn in (ddr2_points, ddr3_points):
            rates = sorted({p.datarate for p in points_fn()})
            means = [spread(points_fn(IddMeasure.IDD4R, rate, 16))[1]
                     for rate in rates]
            assert all(a < b for a, b in zip(means, means[1:]))

    def test_idd4_grows_with_width(self):
        for points_fn, rate in ((ddr2_points, 800e6),
                                (ddr3_points, 1333e6)):
            means = [spread(points_fn(IddMeasure.IDD4R, rate, w))[1]
                     for w in (4, 8, 16)]
            assert all(a < b for a, b in zip(means, means[1:]))

    def test_ddr3_below_ddr2_at_800(self):
        ddr2_mean = spread(ddr2_points(IddMeasure.IDD4R, 800e6, 16))[1]
        ddr3_mean = spread(ddr3_points(IddMeasure.IDD4R, 800e6, 16))[1]
        assert ddr3_mean < ddr2_mean

    def test_idd0_width_dependence_is_mild(self):
        # Row cycling grows with page size (x16 parts open 2 KB pages)
        # but far less than proportionally.
        for points_fn, rate in ((ddr2_points, 667e6),
                                (ddr3_points, 1333e6)):
            x4 = spread(points_fn(IddMeasure.IDD0, rate, 4))[1]
            x16 = spread(points_fn(IddMeasure.IDD0, rate, 16))[1]
            assert 1.0 < x16 / x4 < 1.5

    def test_write_above_read(self):
        for points_fn, rate in ((ddr2_points, 800e6),
                                (ddr3_points, 1600e6)):
            read = spread(points_fn(IddMeasure.IDD4R, rate, 16))[1]
            write = spread(points_fn(IddMeasure.IDD4W, rate, 16))[1]
            assert write >= read

    def test_vendor_spread_is_wide(self):
        # The paper: "the data sheet values show a quite large spread".
        low, mean, high = spread(ddr3_points(IddMeasure.IDD4R, 1333e6, 16))
        assert (high - low) / mean > 0.15

    def test_all_currents_positive_and_sane(self):
        for point in DDR2_1G_POINTS + DDR3_1G_POINTS:
            assert 20 < point.current_ma < 400, point.label
