"""Tests for the datasheet IDD current definitions."""

import pytest

from repro.core.idd import (
    IddMeasure,
    idd0,
    idd2n,
    idd3n,
    idd4r,
    idd4w,
    idd5b,
    idd7,
    idd7_counts,
    idd7_mixed,
    measure,
    standard_idd_suite,
)
from repro.description import Command


class TestIdd0:
    def test_one_row_cycle(self, ddr3_model):
        result = idd0(ddr3_model)
        assert result.power.duration == pytest.approx(
            ddr3_model.device.timing.trc
        )
        assert result.measure is IddMeasure.IDD0

    def test_above_standby(self, ddr3_model):
        assert idd0(ddr3_model).current > idd2n(ddr3_model).current

    def test_milliamps_scale(self, ddr3_model):
        # A DDR3 part cycles rows at tens of mA.
        assert 30 < idd0(ddr3_model).milliamps < 150


class TestStandby:
    def test_idd2n_is_background_only(self, ddr3_model):
        result = idd2n(ddr3_model)
        assert result.power.power == pytest.approx(
            ddr3_model.background_power
        )

    def test_idd3n_equals_idd2n(self, ddr3_model):
        # Documented model limitation: no bank-state DC current.
        assert idd3n(ddr3_model).current == pytest.approx(
            idd2n(ddr3_model).current
        )


class TestIdd4:
    def test_gapless_read_duration(self, ddr3_model):
        result = idd4r(ddr3_model)
        spec = ddr3_model.device.spec
        assert result.power.duration == pytest.approx(
            spec.burst_length / spec.datarate
        )

    def test_read_saturates_bandwidth(self, ddr3_model):
        result = idd4r(ddr3_model)
        assert result.power.data_bits_per_second == pytest.approx(
            ddr3_model.device.spec.peak_bandwidth
        )

    def test_idd4_above_idd0(self, ddr3_model):
        # Column streaming beats row cycling on modern wide parts.
        assert idd4r(ddr3_model).current > idd0(ddr3_model).current

    def test_write_slightly_above_read(self, ddr3_model):
        read = idd4r(ddr3_model).current
        write = idd4w(ddr3_model).current
        assert 0.95 < write / read < 1.25


class TestRefresh:
    def test_idd5b_above_standby(self, ddr3_model):
        assert idd5b(ddr3_model).current > idd2n(ddr3_model).current

    def test_idd5b_well_below_idd0(self, ddr3_model):
        # Refresh is distributed: a few row cycles per 7.8 µs.
        assert idd5b(ddr3_model).current < idd0(ddr3_model).current


class TestIdd7:
    def test_counts_cover_all_banks(self, ddr3_model):
        counts, window = idd7_counts(ddr3_model)
        assert counts[Command.ACT] == ddr3_model.device.spec.banks
        assert counts[Command.PRE] == ddr3_model.device.spec.banks
        assert window >= ddr3_model.device.timing.trc

    def test_reads_fill_the_window(self, ddr3_model):
        counts, window = idd7_counts(ddr3_model)
        max_reads = window * ddr3_model.device.spec.core_access_rate
        assert counts[Command.RD] == pytest.approx(max_reads, abs=1.0)

    def test_write_fraction(self, ddr3_model):
        counts, _ = idd7_counts(ddr3_model, write_fraction=0.5)
        assert counts[Command.WR] == pytest.approx(counts[Command.RD])

    def test_idd7_is_the_maximum_measure(self, ddr3_model):
        suite = standard_idd_suite(ddr3_model)
        largest = max(suite.values(), key=lambda result: result.current)
        assert largest.measure is IddMeasure.IDD7

    def test_mixed_pattern_close_to_idd7(self, ddr3_model):
        mixed = idd7_mixed(ddr3_model)
        pure = idd7(ddr3_model).power
        assert 0.9 < mixed.power / pure.power < 1.15


class TestSuite:
    def test_all_measures_present(self, ddr3_model):
        suite = standard_idd_suite(ddr3_model)
        assert set(suite) == set(IddMeasure)

    def test_measure_dispatch(self, ddr3_model):
        result = measure(ddr3_model, IddMeasure.IDD4R)
        assert result.measure is IddMeasure.IDD4R
        by_string = measure(ddr3_model, "idd4r")
        assert by_string.current == pytest.approx(result.current)

    def test_ordering_invariants_all_devices(self, all_devices):
        from repro import DramPowerModel
        for device in all_devices:
            model = DramPowerModel(device)
            suite = standard_idd_suite(model)
            assert (suite[IddMeasure.IDD0].current
                    > suite[IddMeasure.IDD2N].current), device.name
            assert (suite[IddMeasure.IDD7].current
                    >= suite[IddMeasure.IDD4R].current * 0.99), device.name
