"""Tests for the physical-floorplan description classes."""

import pytest

from repro.description import PhysicalFloorplan
from repro.description.floorplan import (
    ArrayArchitecture,
    BitlineArchitecture,
    BlockSpec,
)
from repro.errors import DescriptionError, FloorplanError


def open_array(**overrides):
    values = dict(
        bitline_direction="v",
        bits_per_bitline=512,
        bits_per_swl=512,
        bitline_arch=BitlineArchitecture.OPEN,
        blocks_per_csl=1,
        wl_pitch=165e-9,
        bl_pitch=110e-9,
        width_sa_stripe=20e-6,
        width_swd_stripe=8e-6,
    )
    values.update(overrides)
    return ArrayArchitecture(**values)


def folded_array(**overrides):
    overrides.setdefault("bitline_arch", BitlineArchitecture.FOLDED)
    overrides.setdefault("wl_pitch", 150e-9)
    overrides.setdefault("bl_pitch", 150e-9)
    return open_array(**overrides)


class TestArrayArchitecture:
    def test_open_cell_area_is_pitch_product(self):
        array = open_array()
        assert array.cell_area == pytest.approx(165e-9 * 110e-9)

    def test_folded_cell_area_doubles(self):
        array = folded_array()
        assert array.cell_area == pytest.approx(150e-9 * 150e-9 * 2)

    def test_open_bitline_length(self):
        array = open_array()
        assert array.local_bitline_length == pytest.approx(512 * 165e-9)

    def test_folded_bitline_length_doubles(self):
        array = folded_array()
        assert array.local_bitline_length == pytest.approx(
            2 * 512 * 150e-9
        )

    def test_local_wordline_length(self):
        array = open_array()
        assert array.local_wordline_length == pytest.approx(512 * 110e-9)

    def test_rows_per_subarray_open(self):
        assert open_array().rows_per_subarray == 512

    def test_rows_per_subarray_folded_doubles(self):
        assert folded_array().rows_per_subarray == 1024

    def test_rejects_bad_direction(self):
        with pytest.raises(DescriptionError):
            open_array(bitline_direction="x")

    def test_rejects_non_power_of_two_bitline(self):
        with pytest.raises(DescriptionError):
            open_array(bits_per_bitline=500)

    def test_rejects_zero_pitch(self):
        with pytest.raises(DescriptionError):
            open_array(wl_pitch=0.0)

    def test_is_folded_flag(self):
        assert folded_array().is_folded
        assert not open_array().is_folded


class TestBlockSpec:
    def test_peripheral_needs_size(self):
        with pytest.raises(DescriptionError):
            BlockSpec(name="P1", is_array=False, size=0.0)

    def test_array_may_derive_size(self):
        assert BlockSpec(name="A1", is_array=True).size == 0.0

    def test_rejects_empty_name(self):
        with pytest.raises(DescriptionError):
            BlockSpec(name="", is_array=True)


def sample_floorplan(**overrides):
    values = dict(
        array=open_array(),
        horizontal=("A1", "R1", "A1", "R1", "A1", "R1", "A1"),
        vertical=("A1", "P1", "P2", "P1", "A1"),
        widths={"R1": 150e-6},
        heights={"P1": 200e-6, "P2": 530e-6},
        array_types=frozenset({"A1"}),
    )
    values.update(overrides)
    return PhysicalFloorplan(**values)


class TestPhysicalFloorplan:
    def test_paper_grid_has_eight_array_blocks(self):
        # Figure 1: "The eight array blocks correspond to the eight banks".
        plan = sample_floorplan()
        assert plan.array_columns == 4
        assert plan.array_rows == 2
        assert plan.array_block_count == 8

    def test_is_array_cell(self):
        plan = sample_floorplan()
        assert plan.is_array_cell(0, 0)
        assert plan.is_array_cell(6, 4)
        assert not plan.is_array_cell(1, 0)  # row-logic column
        assert not plan.is_array_cell(0, 2)  # centre stripe row

    def test_missing_peripheral_size_rejected(self):
        with pytest.raises(FloorplanError):
            sample_floorplan(widths={})

    def test_non_positive_size_rejected(self):
        with pytest.raises(FloorplanError):
            sample_floorplan(widths={"R1": -1.0})

    def test_needs_array_on_both_axes(self):
        with pytest.raises(FloorplanError):
            sample_floorplan(vertical=("P1", "P2", "P1"))

    def test_empty_axis_rejected(self):
        with pytest.raises(FloorplanError):
            sample_floorplan(horizontal=())

    def test_with_array_override(self):
        plan = sample_floorplan().with_array(bits_per_swl=256)
        assert plan.array.bits_per_swl == 256
        assert plan.array.bits_per_bitline == 512
