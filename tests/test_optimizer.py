"""Tests for the design-space explorer."""

import pytest

from repro.analysis.optimizer import (
    DEFAULT_SPACE,
    DesignChoice,
    best_design,
    design_space_report,
    explore_design_space,
)
from repro.errors import ModelError


@pytest.fixture(scope="module")
def points(ddr3_device):
    return explore_design_space(ddr3_device)


class TestExploration:
    def test_full_space_evaluated(self, points):
        # 3 pages × 2 SWLs × 2 Vints × 2 stripes, all applicable on the
        # reference device.
        assert len(points) == 24

    def test_feasible_sorted_first_then_by_energy(self, points):
        feasible_flags = [point.feasible for point in points]
        # Once infeasible points start they never go back to feasible.
        if False in feasible_flags:
            first_bad = feasible_flags.index(False)
            assert all(not flag for flag in feasible_flags[first_bad:])
        feasible = [point for point in points if point.feasible]
        energies = [point.energy_per_bit for point in feasible]
        assert energies == sorted(energies)

    def test_half_page_wins(self, points):
        # Smaller activation dominates the Idd7-style objective.
        assert points[0].labels["page"] == "half-page"

    def test_low_vint_beats_nominal_pairwise(self, points):
        by_label = {point.label: point for point in points}
        for label, point in by_label.items():
            if "low-vint" in label:
                partner = label.replace("low-vint", "nominal-vint")
                assert point.energy_per_bit < \
                    by_label[partner].energy_per_bit

    def test_devices_are_valid(self, points):
        for point in points[:5]:
            assert point.device.spec.density_bits == \
                points[0].device.spec.density_bits

    def test_report_renders(self, points):
        text = design_space_report(points, limit=5)
        assert "pJ/bit" in text
        assert text.count("\n") <= 5 + 4


class TestBestDesign:
    def test_best_is_feasible(self, ddr3_device):
        best = best_design(ddr3_device)
        assert best.feasible

    def test_best_improves_on_baseline(self, ddr3_device, points):
        from repro.core.idd import idd7_mixed
        from repro import DramPowerModel
        baseline = idd7_mixed(
            DramPowerModel(ddr3_device)).energy_per_bit
        assert best_design(ddr3_device).energy_per_bit < baseline


class TestCustomSpace:
    def test_inapplicable_options_skipped(self, ddr3_device):
        space = (DesignChoice("noop", {
            "identity": lambda device: device,
            "impossible": lambda device: None,
        }),)
        points = explore_design_space(ddr3_device, space)
        assert len(points) == 1
        assert points[0].labels["noop"] == "identity"

    def test_empty_space_rejected(self, ddr3_device):
        space = (DesignChoice("dead", {
            "impossible": lambda device: None,
        }),)
        with pytest.raises(ModelError):
            explore_design_space(ddr3_device, space)
