"""Guards against documentation rot: docs reference only real artifacts."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDocsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                      "EXPERIMENTS.md",
                                      "docs/MODEL.md", "docs/DSL.md",
                                      "docs/TUTORIAL.md",
                                      "docs/CALIBRATION.md"])
    def test_document_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text().splitlines()) > 30, name


class TestExperimentIndex:
    def test_every_referenced_benchmark_exists(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        text += (ROOT / "DESIGN.md").read_text()
        for match in set(re.findall(r"test_\w+\.py", text)):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_every_benchmark_is_indexed(self):
        documented = (ROOT / "EXPERIMENTS.md").read_text() \
            + (ROOT / "DESIGN.md").read_text()
        for path in (ROOT / "benchmarks").glob("test_*.py"):
            assert path.name in documented, path.name


class TestReadme:
    def test_examples_referenced_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in set(re.findall(r"examples/(\w+\.py)", text)):
            assert (ROOT / "examples" / match).exists(), match

    def test_cli_commands_are_real(self):
        from repro.cli import build_parser
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        known = set(subparsers.choices)
        text = (ROOT / "README.md").read_text()
        match = re.search(r"python -m repro ([\w|\s\n]+?)`", text)
        assert match, "README should list the CLI commands"
        mentioned = {token.strip() for token in
                     match.group(1).replace("\n", "").split("|")}
        assert mentioned <= known | {""}, mentioned - known


class TestExamplesComplete:
    def test_at_least_seven_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 7

    def test_quickstart_present(self):
        assert (ROOT / "examples" / "quickstart.py").exists()

    def test_descriptions_shipped(self):
        files = list((ROOT / "examples" / "descriptions").glob("*.dram"))
        assert len(files) >= 2
