"""Tests for IDD1 and the open- vs closed-page scheduling policy."""

import pytest

from repro.core.idd import idd0, idd1, idd4r
from repro.core.trace import evaluate_trace
from repro.description import Command
from repro.errors import ModelError
from repro.workloads import OpenPageScheduler, Request


class TestIdd1:
    def test_above_idd0(self, ddr3_model):
        # IDD1 adds one read burst per row cycle on top of IDD0.
        assert idd1(ddr3_model).current > idd0(ddr3_model).current

    def test_below_idd4r(self, ddr3_model):
        # One read per tRC is far below gapless reads.
        assert idd1(ddr3_model).current < idd4r(ddr3_model).current

    def test_decomposition(self, ddr3_model):
        trc = ddr3_model.device.timing.trc
        expected = (idd0(ddr3_model).power.power
                    + ddr3_model.operation_energy(Command.RD) / trc)
        assert idd1(ddr3_model).power.power == pytest.approx(expected)


class TestClosedPagePolicy:
    def test_policy_validated(self, ddr3_device):
        with pytest.raises(ModelError):
            OpenPageScheduler(ddr3_device, policy="speculative")

    def test_closed_page_precharges_after_each_access(self, ddr3_device):
        scheduler = OpenPageScheduler(ddr3_device, policy="closed")
        scheduler.extend([Request(0, 1), Request(0, 1)])
        trace = scheduler.finalize()
        commands = [entry.command for entry in trace]
        # Even the same-row second request re-activates.
        assert commands == [Command.ACT, Command.RD, Command.PRE,
                            Command.ACT, Command.RD, Command.PRE]

    def test_closed_page_trace_is_legal(self, ddr3_device, ddr3_model):
        scheduler = OpenPageScheduler(ddr3_device, policy="closed")
        scheduler.extend(Request(bank=index % 8, row=index % 32)
                         for index in range(100))
        result = evaluate_trace(ddr3_model, scheduler.finalize(),
                                strict=True)
        assert result.counts[Command.ACT] == 100

    def test_open_beats_closed_on_local_streams(self, ddr3_device,
                                                ddr3_model):
        # High locality: open-page reuses rows, closed-page re-pays the
        # activation every access.
        requests = [Request(bank=0, row=index // 32)
                    for index in range(128)]
        results = {}
        for policy in ("open", "closed"):
            scheduler = OpenPageScheduler(ddr3_device, policy=policy)
            scheduler.extend(requests)
            results[policy] = evaluate_trace(
                ddr3_model, scheduler.finalize())
        assert results["open"].energy_per_bit \
            < 0.7 * results["closed"].energy_per_bit

    def test_policies_converge_without_locality(self, ddr3_device,
                                                ddr3_model):
        # Every access a fresh row: both policies activate per access,
        # so the energy per bit difference shrinks.
        requests = [Request(bank=index % 8, row=index)
                    for index in range(64)]
        energies = {}
        for policy in ("open", "closed"):
            scheduler = OpenPageScheduler(ddr3_device, policy=policy)
            scheduler.extend(requests)
            energies[policy] = evaluate_trace(
                ddr3_model, scheduler.finalize()).energy_per_bit
        assert energies["closed"] == pytest.approx(energies["open"],
                                                   rel=0.15)
