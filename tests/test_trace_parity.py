"""Parity suite: chunked streaming evaluation == one-shot, bit for bit.

The contract behind the ``/trace`` endpoint and the CLI file mode is
that feeding a trace to :class:`TraceAccumulator` in arbitrary chunks
(with snapshots taken in between) produces *exactly* the result of
:func:`evaluate_trace` on the whole trace — same floats, same counts.
This suite pins that across the workload generators, the device
corpus and several chunk sizes.
"""

import pytest

from repro import DramPowerModel
from repro.core.trace import TraceAccumulator, evaluate_trace
from repro.workloads import (copy_trace, pointer_chase_trace,
                             random_trace, streaming_trace)

WORKLOADS = [
    ("streaming", lambda d: streaming_trace(d, 400,
                                            read_fraction=0.7)),
    ("random", lambda d: random_trace(d, 400, row_hit_rate=0.4,
                                      seed=3)),
    ("random-refresh", lambda d: random_trace(d, 300,
                                              with_refresh=True,
                                              seed=5)),
    ("copy", lambda d: copy_trace(d, 4)),
    ("pointer-chase", lambda d: pointer_chase_trace(d, 300, seed=2)),
]

CHUNK_SIZES = (1, 7, 1000)


@pytest.fixture(scope="module")
def device_models(all_devices):
    return [(device, DramPowerModel(device))
            for device in all_devices]


def _chunked(model, trace, size):
    accumulator = TraceAccumulator(model)
    for start in range(0, len(trace), size):
        accumulator.feed(trace[start:start + size])
        # Snapshots must be pure reads: taking one mid-stream must not
        # perturb the final result.
        accumulator.snapshot()
    return accumulator.result()


def _assert_identical(one, two):
    assert one.energy == two.energy
    assert one.duration == two.duration
    assert one.breakdown.values == two.breakdown.values
    assert one.counts == two.counts
    assert one.data_bits == two.data_bits
    assert one.row_hits == two.row_hits
    assert one.row_misses == two.row_misses
    assert one.row_conflicts == two.row_conflicts


@pytest.mark.parametrize("name,build",
                         WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_chunked_matches_oneshot(name, build, device_models):
    for device, model in device_models:
        trace = build(device)
        one_shot = evaluate_trace(model, trace)
        for size in CHUNK_SIZES:
            chunked = _chunked(model, trace, size)
            _assert_identical(one_shot, chunked)


def test_feed_returns_self_for_chaining(device_models):
    device, model = device_models[0]
    trace = streaming_trace(device, 50)
    result = TraceAccumulator(model).feed(trace).result()
    _assert_identical(result, evaluate_trace(model, trace))


def test_generator_and_list_inputs_agree(device_models):
    device, model = device_models[0]
    trace = random_trace(device, 200, seed=9)
    from_list = evaluate_trace(model, trace)
    from_generator = evaluate_trace(model, iter(trace))
    _assert_identical(from_list, from_generator)
