"""Parity suite: chunked streaming evaluation == one-shot, bit for bit.

The contract behind the ``/trace`` endpoint and the CLI file mode is
that feeding a trace to :class:`TraceAccumulator` in arbitrary chunks
(with snapshots taken in between) produces *exactly* the result of
:func:`evaluate_trace` on the whole trace — same floats, same counts.
This suite pins that across the workload generators, the device
corpus and several chunk sizes.
"""

import pytest

from repro import DramPowerModel
from repro.core.trace import TraceAccumulator, evaluate_trace
from repro.workloads import (copy_trace, pointer_chase_trace,
                             random_trace, streaming_trace)

WORKLOADS = [
    ("streaming", lambda d: streaming_trace(d, 400,
                                            read_fraction=0.7)),
    ("random", lambda d: random_trace(d, 400, row_hit_rate=0.4,
                                      seed=3)),
    ("random-refresh", lambda d: random_trace(d, 300,
                                              with_refresh=True,
                                              seed=5)),
    ("copy", lambda d: copy_trace(d, 4)),
    ("pointer-chase", lambda d: pointer_chase_trace(d, 300, seed=2)),
]

CHUNK_SIZES = (1, 7, 1000)


@pytest.fixture(scope="module")
def device_models(all_devices):
    return [(device, DramPowerModel(device))
            for device in all_devices]


def _chunked(model, trace, size):
    accumulator = TraceAccumulator(model)
    for start in range(0, len(trace), size):
        accumulator.feed(trace[start:start + size])
        # Snapshots must be pure reads: taking one mid-stream must not
        # perturb the final result.
        accumulator.snapshot()
    return accumulator.result()


def _assert_identical(one, two):
    assert one.energy == two.energy
    assert one.duration == two.duration
    assert one.breakdown.values == two.breakdown.values
    assert one.counts == two.counts
    assert one.data_bits == two.data_bits
    assert one.row_hits == two.row_hits
    assert one.row_misses == two.row_misses
    assert one.row_conflicts == two.row_conflicts


@pytest.mark.parametrize("name,build",
                         WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_chunked_matches_oneshot(name, build, device_models):
    for device, model in device_models:
        trace = build(device)
        one_shot = evaluate_trace(model, trace)
        for size in CHUNK_SIZES:
            chunked = _chunked(model, trace, size)
            _assert_identical(one_shot, chunked)


def test_feed_returns_self_for_chaining(device_models):
    device, model = device_models[0]
    trace = streaming_trace(device, 50)
    result = TraceAccumulator(model).feed(trace).result()
    _assert_identical(result, evaluate_trace(model, trace))


def test_generator_and_list_inputs_agree(device_models):
    device, model = device_models[0]
    trace = random_trace(device, 200, seed=9)
    from_list = evaluate_trace(model, trace)
    from_generator = evaluate_trace(model, iter(trace))
    _assert_identical(from_list, from_generator)


# ----------------------------------------------------------------------
# Rank-sharded replay: merged shard states == serial one-shot replay.
# ----------------------------------------------------------------------
from repro.trace import (AddressDecoder, evaluate_file_sharded,
                         evaluate_trace_file, fold_file_shards,
                         iter_records, replay_records_sharded,
                         resolve_trace_format, shard_assignments)
from repro.trace.ingest import DEFAULT_CLOCK


def _shard_lines(fmt, count, address_bits, seed=11):
    """Deterministic trace text covering every (channel, rank) shard."""
    import json as _json
    lines = []
    state = seed
    mask = (1 << address_bits) - 1
    for i in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        address = (state * 2654435761) & mask
        if i % 89 == 88:
            op = "REF"
        elif state % 3 == 0:
            op = "WRITE"
        else:
            op = "READ"
        if fmt == "jsonl":
            lines.append(_json.dumps({"addr": address, "op": op,
                                      "cycle": i * 4}))
        else:
            lines.append(f"0x{address:x} {op} {i * 4}")
    return lines


def _result_key(result):
    return (result.energy, result.duration, result.counts,
            result.row_hits, result.row_misses, result.row_conflicts,
            result.data_bits, result.breakdown.values)


class TestShardedReplayParity:
    @pytest.mark.parametrize("fmt", ["k6", "mase", "jsonl"])
    @pytest.mark.parametrize("policy", ["row-bank-column",
                                        "bank-row-column"])
    def test_shard_fold_merge_matches_serial(self, fmt, policy,
                                             ddr3_model, tmp_path):
        """Folding each shard range separately and merging in shard
        order must reproduce serial replay exactly (in-process, so
        the whole matrix stays fast)."""
        from repro.core.trace import TraceAccumulator

        decoder = AddressDecoder.from_device(ddr3_model.device,
                                             policy=policy,
                                             channel_bits=1,
                                             rank_bits=1)
        lines = _shard_lines(fmt, 1200, decoder.address_bits)
        path = tmp_path / f"s.{fmt}.trc"
        path.write_text("\n".join(lines) + "\n")
        from repro.trace import replay_trace_file
        serial, backend = replay_trace_file(ddr3_model, path, fmt=fmt,
                                            decoder=decoder,
                                            backend="serial")
        assert backend == "serial"
        merged = TraceAccumulator(ddr3_model, strict=False)
        for low, high in shard_assignments(decoder.num_shards, 3):
            piece = fold_file_shards(ddr3_model, path, fmt, decoder,
                                     DEFAULT_CLOCK, range(low, high))
            merged.merge(piece)
        assert (_result_key(merged.result())
                == _result_key(serial.result()))
        assert merged.commands_seen == serial.commands_seen

    def test_process_pool_matches_serial(self, ddr3_model, tmp_path):
        """One real multi-process run (pools are slow to spawn, so a
        single pooled case guards the wire format; the in-process
        matrix above covers the fold/merge algebra)."""
        decoder = AddressDecoder.from_device(ddr3_model.device,
                                             channel_bits=1,
                                             rank_bits=1)
        lines = _shard_lines("k6", 4000, decoder.address_bits)
        path = tmp_path / "pool.trc"
        path.write_text("\n".join(lines) + "\n")
        serial = evaluate_trace_file(ddr3_model, path,
                                     decoder=decoder,
                                     backend="serial")
        pooled = evaluate_file_sharded(
            ddr3_model, path, resolve_trace_format(path), decoder,
            DEFAULT_CLOCK, jobs=2)
        assert _result_key(pooled.result()) == _result_key(serial)

    def test_sharded_records_match_serial(self, ddr3_model):
        decoder = AddressDecoder.from_device(ddr3_model.device,
                                             rank_bits=2)
        lines = _shard_lines("k6", 1500, decoder.address_bits)
        records = list(iter_records(iter(lines), "k6"))
        from repro.trace import accumulate_records
        serial = accumulate_records(ddr3_model, iter(records),
                                    decoder=decoder,
                                    backend="serial")
        # jobs=1 exercises the single-range in-process path.
        sharded = replay_records_sharded(ddr3_model, records, decoder,
                                         DEFAULT_CLOCK, jobs=1)
        assert (_result_key(sharded.result())
                == _result_key(serial.result()))

    def test_empty_and_full_shard_ranges(self, ddr3_model, tmp_path):
        decoder = AddressDecoder.from_device(ddr3_model.device,
                                             channel_bits=1)
        lines = _shard_lines("k6", 300, decoder.address_bits)
        path = tmp_path / "e.trc"
        path.write_text("\n".join(lines) + "\n")
        empty = fold_file_shards(ddr3_model, path, "k6", decoder,
                                 DEFAULT_CLOCK, [])
        assert empty.commands_seen == 0
        serial = evaluate_trace_file(ddr3_model, path,
                                     decoder=decoder,
                                     backend="serial")
        full = fold_file_shards(ddr3_model, path, "k6", decoder,
                                DEFAULT_CLOCK,
                                range(decoder.num_shards))
        assert _result_key(full.result()) == _result_key(serial)

    def test_shard_assignments_cover_in_order(self):
        for shards, workers in ((1, 4), (4, 2), (8, 3), (16, 16)):
            ranges = shard_assignments(shards, workers)
            covered = [i for low, high in ranges
                       for i in range(low, high)]
            assert covered == list(range(shards))
