"""Tests for the device builder and the named catalog."""

import pytest

from repro import DramPowerModel
from repro.devices import (
    build_device,
    default_bank_count,
    default_page_bits,
    ddr2_1g,
    ddr3_1g,
    ddr3_2g_55nm,
    ddr5_16g_18nm,
    generation_sweep,
    sdr_128m_170nm,
    sensitivity_trio,
)
from repro.errors import DescriptionError
from repro.technology.roadmap import nodes

_GBIT = 1 << 30


class TestDefaults:
    def test_node_defaults_from_roadmap(self):
        device = build_device(55)
        assert device.interface == "DDR3"
        assert device.spec.density_bits == 2 * _GBIT
        assert device.spec.datarate == pytest.approx(1.6e9)

    def test_page_bits_rules(self):
        assert default_page_bits("DDR3", 16) == 16384
        assert default_page_bits("DDR3", 8) == 8192
        assert default_page_bits("SDR", 16) == 8192

    def test_bank_count_rules(self):
        assert default_bank_count("SDR", 128 << 20) == 4
        assert default_bank_count("DDR2", 512 << 20) == 4
        assert default_bank_count("DDR2", _GBIT) == 8
        assert default_bank_count("DDR4", 8 * _GBIT) == 16
        assert default_bank_count("DDR5", 16 * _GBIT) == 32

    def test_unknown_interface_rejected(self):
        with pytest.raises(DescriptionError):
            build_device(55, interface="HBM3")

    def test_non_power_of_two_density_rejected(self):
        with pytest.raises(DescriptionError):
            build_device(55, density_bits=3 * _GBIT)


class TestVoltagesAcrossInterfaces:
    def test_mainstream_pairing(self):
        device = build_device(55)
        assert device.voltages.vdd == 1.5
        assert device.voltages.vint == pytest.approx(1.4)

    def test_cross_pairing_raises_vint(self):
        # A DDR2 built at 65 nm runs its periphery above a 65 nm DDR3.
        ddr2 = build_device(65, interface="DDR2", density_bits=_GBIT,
                            datarate=800e6)
        ddr3 = build_device(65, interface="DDR3", density_bits=_GBIT,
                            datarate=1066e6)
        assert ddr2.voltages.vdd == 1.8
        assert ddr2.voltages.vint > ddr3.voltages.vint
        # Technology rails are unchanged.
        assert ddr2.voltages.vbl == ddr3.voltages.vbl
        assert ddr2.voltages.vpp == ddr3.voltages.vpp

    def test_efficiencies_within_bounds(self):
        for node in (170, 90, 55, 18):
            volts = build_device(node).voltages
            assert 0 < volts.eff_vpp <= 1, node
            assert 0 < volts.eff_vint <= 1, node


class TestCatalog:
    def test_ddr2_verification_part(self):
        device = ddr2_1g(800e6, 16)
        assert device.interface == "DDR2"
        assert device.spec.density_bits == _GBIT
        assert device.node == pytest.approx(75e-9)
        assert device.floorplan.array.is_folded  # 8F² era

    def test_ddr3_verification_part(self):
        device = ddr3_1g(1333e6, 8)
        assert device.spec.io_width == 8
        assert not device.floorplan.array.is_folded  # 6F² era

    def test_sensitivity_trio_matches_table_iii(self):
        sdr, ddr3, ddr5 = sensitivity_trio()
        assert sdr.density_label == "128M" and sdr.interface == "SDR"
        assert ddr3.density_label == "2G" and ddr3.interface == "DDR3"
        assert ddr5.density_label == "16G" and ddr5.interface == "DDR5"
        assert sdr.node == pytest.approx(170e-9)
        assert ddr3.node == pytest.approx(55e-9)
        assert ddr5.node == pytest.approx(18e-9)

    def test_named_devices_build_models(self):
        for device in (sdr_128m_170nm(), ddr3_2g_55nm(),
                       ddr5_16g_18nm()):
            model = DramPowerModel(device)
            assert model.pattern_power().power > 0

    def test_generation_sweep_covers_roadmap(self):
        devices = generation_sweep()
        assert len(devices) == len(nodes())
        assert [round(d.node * 1e9) for d in devices] == \
            [round(n) for n in nodes()]


class TestBuilderInternals:
    def test_bits_per_csl_capped_by_access(self):
        # An SDR x4 access is 4 bits; the CSL group must shrink to fit.
        device = build_device(170, interface="SDR",
                              density_bits=128 << 20, io_width=4,
                              datarate=166e6)
        assert device.technology.bits_per_csl == 4

    def test_logic_blocks_present(self):
        device = build_device(55)
        names = {block.name for block in device.logic_blocks}
        assert {"control", "rowlogic", "collogic", "datapath",
                "interface", "iodrv", "dll"} <= names

    def test_sdr_has_no_dll(self):
        device = build_device(170)
        names = {block.name for block in device.logic_blocks}
        assert "dll" not in names

    def test_signal_nets_present(self):
        device = build_device(55)
        names = {net.name for net in device.signaling}
        assert {"ClockTree", "CmdAddr", "RowAddr", "ColAddr",
                "DataReadCore", "DataWriteCore", "DataReadIO",
                "DataWriteIO"} == names

    def test_logic_gate_counts_grow_with_complexity(self):
        sdr = build_device(170)
        ddr5 = build_device(18)
        assert (ddr5.logic_block("control").n_gates
                > 5 * sdr.logic_block("control").n_gates)

    def test_custom_name(self):
        device = build_device(55, name="my-part")
        assert device.name == "my-part"

    def test_explicit_page_and_banks(self):
        device = build_device(55, page_bits=8192, banks=16)
        assert device.spec.page_bits == 8192
        assert device.spec.banks == 16
