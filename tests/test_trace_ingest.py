"""Tests for trace-file parsers, address decoding and ingestion."""

import gzip
import json

import pytest

from repro.core.trace import TraceAccumulator, evaluate_trace
from repro.description import Command
from repro.trace import (AddressDecoder, DecodedAddress,
                         TraceFormatError, TraceRecord,
                         commands_from_records, detect_format,
                         evaluate_trace_file, iter_decompressed,
                         iter_jsonl, iter_k6, iter_lines, iter_mase,
                         iter_records, read_trace)


class TestK6Parser:
    def test_parses_dramsim_ops(self):
        lines = [
            "0x7FF2C8A0 P_MEM_RD 186",
            "0x7FF2C8B0 P_FETCH 190",
            "0x7FF2C8C0 P_LOCK_RD 194",
            "0x7FF2C8D0 P_MEM_WR 200",
            "0x7FF2C8E0 P_LOCK_WR 204",
        ]
        records = list(iter_k6(lines))
        assert [r.kind for r in records] == [
            "read", "read", "read", "write", "write"]
        assert records[0].address == 0x7FF2C8A0
        assert records[0].cycle == 186
        assert records[0].line == 1

    def test_plain_and_refresh_ops(self):
        lines = ["0x100 READ 1", "0x200 WRITE 2", "0x0 REF 3"]
        kinds = [r.kind for r in iter_k6(lines)]
        assert kinds == ["read", "write", "refresh"]

    def test_comments_and_blanks_skipped(self):
        lines = ["# header", "", "; note", "// other", "0x10 READ 5"]
        records = list(iter_k6(lines))
        assert len(records) == 1
        assert records[0].line == 5

    def test_wrong_column_count(self):
        with pytest.raises(TraceFormatError) as excinfo:
            list(iter_k6(["0x10 READ"], source="t.trc"))
        assert excinfo.value.line == 1
        assert "t.trc:1:" in str(excinfo.value)

    def test_unknown_operation(self):
        lines = ["0x10 READ 1", "0x20 BOGUS 2"]
        with pytest.raises(TraceFormatError, match="BOGUS") as excinfo:
            list(iter_k6(lines))
        assert excinfo.value.line == 2

    def test_bad_address_and_cycle(self):
        with pytest.raises(TraceFormatError, match="address"):
            list(iter_k6(["zz READ 1"]))
        with pytest.raises(TraceFormatError, match="cycle"):
            list(iter_k6(["0x10 READ x9"]))


class TestMaseParser:
    def test_ifetch_reads(self):
        lines = ["0x2971CFA0 IFETCH 62", "0x100 WRITE 70"]
        records = list(iter_mase(lines))
        assert [r.kind for r in records] == ["read", "write"]

    def test_rejects_k6_vocabulary(self):
        with pytest.raises(TraceFormatError, match="P_MEM_RD"):
            list(iter_mase(["0x10 P_MEM_RD 1"]))


class TestJsonlParser:
    def test_parses_objects(self):
        lines = [
            json.dumps({"address": "0x100", "op": "read", "cycle": 4}),
            json.dumps({"addr": 512, "kind": "write", "time": 9}),
        ]
        records = list(iter_jsonl(lines))
        assert records[0] == TraceRecord(0x100, "read", 4, line=1)
        assert records[1] == TraceRecord(512, "write", 9, line=2)

    def test_missing_fields(self):
        with pytest.raises(TraceFormatError, match="address"):
            list(iter_jsonl(['{"op": "read", "cycle": 1}']))
        with pytest.raises(TraceFormatError, match="cycle"):
            list(iter_jsonl(['{"address": 16, "op": "read"}']))

    def test_invalid_json(self):
        with pytest.raises(TraceFormatError, match="JSON") as excinfo:
            list(iter_jsonl(["not json"]))
        assert excinfo.value.line == 1


class TestFormatDispatch:
    def test_detects_each_format(self):
        assert detect_format('{"address": 1}') == "jsonl"
        assert detect_format("0x10 IFETCH 3") == "mase"
        assert detect_format("0x10 P_MEM_RD 3") == "k6"

    def test_unknown_format_name(self):
        with pytest.raises(TraceFormatError, match="unknown trace"):
            iter_records([], "xml")


class TestByteStreams:
    def test_iter_lines_reassembles_split_chunks(self):
        text = "0x10 READ 1\n0x20 WRITE 2\n0x30 READ 3"
        blob = text.encode()
        chunks = [blob[i:i + 5] for i in range(0, len(blob), 5)]
        assert list(iter_lines(chunks)) == text.split("\n")

    def test_iter_decompressed_round_trip(self):
        payload = b"0x10 READ 1\n" * 500
        blob = gzip.compress(payload)
        chunks = [blob[i:i + 7] for i in range(0, len(blob), 7)]
        assert b"".join(iter_decompressed(chunks)) == payload

    def test_iter_decompressed_multi_member(self):
        blob = gzip.compress(b"0x10 READ 1\n") \
            + gzip.compress(b"0x20 WRITE 2\n")
        joined = b"".join(iter_decompressed([blob]))
        assert joined == b"0x10 READ 1\n0x20 WRITE 2\n"


class TestReadTrace:
    def test_gzip_file_sniffed_by_magic(self, tmp_path):
        path = tmp_path / "trace.bin"  # no .gz suffix on purpose
        path.write_bytes(gzip.compress(b"0x10 READ 1\n0x20 WRITE 2\n"))
        records = list(read_trace(path))
        assert [r.kind for r in records] == ["read", "write"]

    def test_auto_detects_past_comment_header(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n0x10 IFETCH 1\n0x20 READ 2\n")
        records = list(read_trace(path))
        assert len(records) == 2
        assert records[0].kind == "read"

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("0x10 READ 1\nbroken line here extra\n")
        with pytest.raises(TraceFormatError) as excinfo:
            list(read_trace(path))
        assert excinfo.value.line == 2
        assert "bad.trc:2:" in str(excinfo.value)


class TestAddressDecoder:
    @pytest.mark.parametrize("policy", ["row-bank-column",
                                        "bank-row-column"])
    def test_round_trip(self, policy):
        decoder = AddressDecoder(bank_bits=3, row_bits=14, col_bits=10,
                                 channel_bits=1, rank_bits=2,
                                 offset_bits=2, policy=policy)
        decoded = DecodedAddress(channel=1, rank=3, bank=5, row=9001,
                                 column=321)
        assert decoder.decode(decoder.encode(decoded)) == decoded

    def test_policies_place_bank_differently(self):
        kwargs = dict(bank_bits=3, row_bits=14, col_bits=10)
        page = AddressDecoder(policy="row-bank-column", **kwargs)
        bank = AddressDecoder(policy="bank-row-column", **kwargs)
        address = 0b101 << 10  # three bits just above the column
        assert page.decode(address).bank == 0b101
        assert bank.decode(address).row == 0b101

    def test_sequential_addresses_walk_columns(self):
        decoder = AddressDecoder(bank_bits=3, row_bits=14, col_bits=10,
                                 offset_bits=1)
        first = decoder.decode(0)
        second = decoder.decode(2)
        assert (first.row, first.bank) == (second.row, second.bank)
        assert second.column == first.column + 1

    def test_flat_bank_spans_channel_and_rank(self):
        decoder = AddressDecoder(bank_bits=3, row_bits=14, col_bits=10,
                                 channel_bits=1, rank_bits=1)
        low = decoder.flat_bank(DecodedAddress(bank=7))
        high = decoder.flat_bank(DecodedAddress(channel=1, rank=1,
                                                bank=0))
        assert low == 7
        # ((channel << rank_bits) | rank) << bank_bits = 0b11 << 3
        assert high == 24

    def test_encode_rejects_out_of_range_fields(self):
        decoder = AddressDecoder(bank_bits=3, row_bits=14, col_bits=10)
        with pytest.raises(Exception, match="bank 8"):
            decoder.encode(DecodedAddress(bank=8))

    def test_bad_policy_rejected(self):
        with pytest.raises(Exception, match="policy"):
            AddressDecoder(bank_bits=3, row_bits=14, col_bits=10,
                           policy="column-major")

    def test_from_device_matches_geometry(self, ddr3_device):
        decoder = AddressDecoder.from_device(ddr3_device)
        spec = ddr3_device.spec
        assert decoder.bank_bits == spec.bank_bits
        assert decoder.row_bits == spec.row_bits
        assert decoder.col_bits == spec.col_bits
        top = decoder.decode((1 << decoder.address_bits) - 1)
        assert top.bank == (1 << spec.bank_bits) - 1


class TestOpenPageExpansion:
    def _decoder(self):
        return AddressDecoder(bank_bits=3, row_bits=14, col_bits=10,
                              offset_bits=2)

    def test_row_switch_emits_precharge_and_activate(self):
        decoder = self._decoder()
        row_stride = 1 << (decoder.offset_bits + decoder.col_bits
                           + decoder.bank_bits)
        records = [
            TraceRecord(0, "read", 0),
            TraceRecord(4, "read", 10),          # same row: hit
            TraceRecord(row_stride, "write", 20),  # new row: PRE+ACT
        ]
        commands = list(commands_from_records(records, decoder))
        ops = [c.command for c in commands]
        assert ops == [Command.ACT, Command.RD, Command.RD,
                       Command.PRE, Command.ACT, Command.WR]

    def test_refresh_closes_open_row(self):
        decoder = self._decoder()
        records = [
            TraceRecord(0, "read", 0),
            TraceRecord(0, "refresh", 50),
            TraceRecord(0, "read", 100),
        ]
        ops = [c.command
               for c in commands_from_records(records, decoder)]
        assert ops == [Command.ACT, Command.RD, Command.PRE,
                       Command.REF, Command.ACT, Command.RD]

    def test_clock_scales_times(self):
        decoder = self._decoder()
        records = [TraceRecord(0, "read", 800)]
        commands = list(commands_from_records(records, decoder,
                                              clock=800e6))
        assert commands[-1].time == pytest.approx(1e-6)
        with pytest.raises(ValueError, match="clock"):
            list(commands_from_records(records, decoder, clock=0.0))


class TestEvaluateTraceFile:
    def _write_trace(self, tmp_path, n=400):
        lines = []
        for i in range(n):
            op = "P_MEM_WR" if i % 3 == 0 else "P_MEM_RD"
            lines.append(f"0x{(i * 64) % (1 << 20):X} {op} {i * 16}")
        lines.append(f"0x0 REF {n * 16}")
        path = tmp_path / "trace.trc.gz"
        path.write_bytes(gzip.compress("\n".join(lines).encode()))
        return path, n

    def test_end_to_end_matches_manual_fold(self, tmp_path,
                                            ddr3_model):
        path, n = self._write_trace(tmp_path)
        result = evaluate_trace_file(ddr3_model, path)
        decoder = AddressDecoder.from_device(ddr3_model.device)
        accumulator = TraceAccumulator(ddr3_model, strict=False)
        accumulator.feed(commands_from_records(read_trace(path),
                                               decoder))
        manual = accumulator.result()
        assert result.counts[Command.RD] \
            + result.counts[Command.WR] == n
        assert result.counts[Command.REF] == 1
        assert result.energy == manual.energy
        assert result.counts == manual.counts

    def test_streamed_chunks_match_file_path(self, tmp_path,
                                             ddr3_model):
        path, _ = self._write_trace(tmp_path)
        one_shot = evaluate_trace_file(ddr3_model, path)
        blob = path.read_bytes()
        chunks = [blob[i:i + 256] for i in range(0, len(blob), 256)]
        decoder = AddressDecoder.from_device(ddr3_model.device)
        records = iter_records(
            iter_lines(iter_decompressed(chunks)), "k6")
        accumulator = TraceAccumulator(ddr3_model, strict=False)
        accumulator.feed(commands_from_records(records, decoder))
        streamed = accumulator.result()
        assert streamed.energy == one_shot.energy
        assert streamed.counts == one_shot.counts
        assert streamed.duration == one_shot.duration


class TestDecoderEdgeGeometries:
    """Decoder corner cases: zero-width channel/rank fields, maximal
    row widths, and shard/field-layout consistency — each geometry
    must decode identically through the scalar and columnar paths."""

    def _parity(self, decoder, lines, ddr3_model):
        from repro.trace import accumulate_records, columnar_available
        records = list(iter_records(iter(lines), "k6"))
        serial = accumulate_records(ddr3_model, iter(records),
                                    decoder=decoder,
                                    backend="serial").result()
        if columnar_available():
            vector = accumulate_records(ddr3_model, iter(records),
                                        decoder=decoder,
                                        backend="vector").result()
            assert vector.energy == serial.energy
            assert vector.counts == serial.counts
            assert vector.row_hits == serial.row_hits
        return serial

    def _lines(self, decoder, count=400):
        lines = []
        state = 29
        mask = (1 << decoder.address_bits) - 1
        for i in range(count):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            address = (state * 2654435761) & mask
            lines.append(f"0x{address:x} READ {i * 4}")
        return lines

    def test_zero_channel_and_rank_bits(self, ddr3_model):
        decoder = AddressDecoder.from_device(ddr3_model.device)
        assert decoder.channel_bits == 0 and decoder.rank_bits == 0
        assert decoder.num_shards == 1
        assert decoder.shard_of((1 << decoder.address_bits) - 1) == 0
        lines = self._lines(decoder)
        self._parity(decoder, lines, ddr3_model)

    def test_max_width_rows(self, ddr3_model):
        decoder = AddressDecoder(bank_bits=1, row_bits=30, col_bits=1,
                                 rank_bits=1, offset_bits=0)
        top = decoder.encode(DecodedAddress(rank=1,
                                            row=(1 << 30) - 1,
                                            bank=1, column=1))
        decoded = decoder.decode(top)
        assert decoded.row == (1 << 30) - 1
        assert decoder.shard_of(top) == 1
        lines = self._lines(decoder)
        self._parity(decoder, lines, ddr3_model)

    @pytest.mark.parametrize("policy", ["row-bank-column",
                                        "bank-row-column"])
    def test_shard_of_matches_flat_bank(self, policy, ddr3_model):
        decoder = AddressDecoder.from_device(ddr3_model.device,
                                             policy=policy,
                                             channel_bits=2,
                                             rank_bits=1)
        state = 97
        mask = (1 << decoder.address_bits) - 1
        seen = set()
        for _ in range(500):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            address = (state * 2654435761) & mask
            decoded = decoder.decode(address)
            flat = decoder.flat_bank(decoded)
            assert decoder.shard_of(address) \
                == flat >> decoder.bank_bits
            seen.add(decoder.shard_of(address))
        assert seen == set(range(decoder.num_shards))

    @pytest.mark.parametrize("policy", ["row-bank-column",
                                        "bank-row-column"])
    def test_field_layout_matches_decode(self, policy, ddr3_model):
        decoder = AddressDecoder.from_device(ddr3_model.device,
                                             policy=policy,
                                             channel_bits=1,
                                             rank_bits=2)
        layout = decoder.field_layout()
        assert sum(width for _, width in layout.values()) \
            + decoder.offset_bits == decoder.address_bits
        address = (1 << decoder.address_bits) - 12345
        decoded = decoder.decode(address)
        for name, (shift, width) in layout.items():
            assert (address >> shift) & ((1 << width) - 1) \
                == getattr(decoded, name)


class TestDetectFormatAmbiguity:
    """Ambiguous first lines must sniff deterministically — and both
    parse paths must then agree on the result."""

    def test_three_token_lines_default_to_k6(self):
        # "READ" is in both vocabularies; k6 wins the tie.
        assert detect_format("0x100 READ 5") == "k6"
        assert detect_format("0x100 WRITE 5") == "k6"
        assert detect_format("0x100 REF 5") == "k6"

    def test_ifetch_selects_mase(self):
        assert detect_format("0x100 IFETCH 5") == "mase"
        assert detect_format("0x100 ifetch 5") == "mase"

    def test_json_object_selects_jsonl(self):
        assert detect_format('{"addr": 256, "op": "read", '
                             '"cycle": 5}') == "jsonl"

    def test_ambiguous_lines_agree_across_parsers(self, ddr3_model):
        # Lines legal under both k6 and mase vocabularies must price
        # identically whichever parser the sniff picks.
        lines = ["0x100 READ 1", "0x2100 WRITE 2", "0x100 REF 3",
                 "0x4100 read 4"]
        decoder = AddressDecoder.from_device(ddr3_model.device)

        def result_for(fmt):
            records = iter_records(iter(lines), fmt)
            accumulator = TraceAccumulator(ddr3_model, strict=False)
            accumulator.feed(commands_from_records(records, decoder))
            return accumulator.result()

        k6 = result_for("k6")
        mase = result_for("mase")
        assert k6.energy == mase.energy
        assert k6.counts == mase.counts

    def test_sniff_skips_comments(self, tmp_path, ddr3_model):
        from repro.trace import resolve_trace_format
        path = tmp_path / "sniff.trc"
        path.write_text("# mase-style trace\n; more header\n"
                        "0x100 IFETCH 5\n")
        assert resolve_trace_format(path) == "mase"
        assert resolve_trace_format(path, "k6") == "k6"
        assert resolve_trace_format(path, "auto") == "mase"

    def test_empty_file_defaults_to_k6(self, tmp_path):
        from repro.trace import resolve_trace_format
        path = tmp_path / "empty.trc"
        path.write_text("# only comments\n\n")
        assert resolve_trace_format(path) == "k6"
