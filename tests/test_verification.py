"""Tests for the Figure 8/9 datasheet verification harness."""

import pytest

from repro.analysis import (
    verification_report,
    verify_ddr2,
    verify_ddr3,
)
from repro.core.idd import IddMeasure


@pytest.fixture(scope="module")
def ddr2_rows():
    return verify_ddr2()


@pytest.fixture(scope="module")
def ddr3_rows():
    return verify_ddr3()


class TestFigure8:
    def test_covers_all_comparison_points(self, ddr2_rows):
        assert len(ddr2_rows) == 36  # 3 measures × 4 rates × 3 widths

    def test_model_close_to_datasheet_band(self, ddr2_rows):
        # "The figures show good agreement": the large majority of points
        # must fall inside the vendor spread widened by 25 % of the mean.
        hits = sum(row.within_spread(0.25) for row in ddr2_rows)
        assert hits >= 0.75 * len(ddr2_rows)

    def test_no_wild_outliers(self, ddr2_rows):
        for row in ddr2_rows:
            assert 0.4 < row.ratio_to_mean < 2.0, row.label

    def test_technology_nodes_modeled(self, ddr2_rows):
        assert set(ddr2_rows[0].model_ma) == {90, 75, 65}


class TestFigure9:
    def test_covers_all_comparison_points(self, ddr3_rows):
        assert len(ddr3_rows) == 36

    def test_model_close_to_datasheet_band(self, ddr3_rows):
        hits = sum(row.within_spread(0.25) for row in ddr3_rows)
        assert hits >= 0.75 * len(ddr3_rows)

    def test_two_technology_nodes_modeled(self, ddr3_rows):
        assert set(ddr3_rows[0].model_ma) == {65, 55}


class TestDependenciesDescribedCorrectly:
    """Paper §IV.A: 'The dependency of current on operating frequency,
    interface standard, I/O width and type of operation is described
    correctly.'"""

    def _model_value(self, rows, measure, rate, width):
        for row in rows:
            if (row.measure is measure and row.datarate == rate
                    and row.io_width == width):
                return row.best_model
        raise AssertionError("comparison point missing")

    def test_current_grows_with_datarate(self, ddr3_rows):
        values = [self._model_value(ddr3_rows, IddMeasure.IDD4R, rate, 16)
                  for rate in (800e6, 1066e6, 1333e6, 1600e6)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_current_grows_with_width(self, ddr3_rows):
        values = [self._model_value(ddr3_rows, IddMeasure.IDD4R, 1333e6,
                                    width) for width in (4, 8, 16)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_idd4_above_idd0_on_wide_parts(self, ddr3_rows):
        idd0 = self._model_value(ddr3_rows, IddMeasure.IDD0, 1333e6, 16)
        idd4 = self._model_value(ddr3_rows, IddMeasure.IDD4R, 1333e6, 16)
        assert idd4 > idd0

    def test_ddr3_below_ddr2_at_same_rate(self, ddr2_rows, ddr3_rows):
        ddr2 = self._model_value(ddr2_rows, IddMeasure.IDD4R, 800e6, 16)
        ddr3 = self._model_value(ddr3_rows, IddMeasure.IDD4R, 800e6, 16)
        assert ddr3 < ddr2

    def test_write_at_least_read(self, ddr3_rows):
        read = self._model_value(ddr3_rows, IddMeasure.IDD4R, 1600e6, 16)
        write = self._model_value(ddr3_rows, IddMeasure.IDD4W, 1600e6, 16)
        assert write >= read


class TestReport:
    def test_report_renders(self, ddr3_rows):
        text = verification_report(ddr3_rows, title="Figure 9")
        assert "Figure 9" in text
        assert "idd4r 1600 x16" in text
        assert "model 65nm" in text

    def test_report_rejects_empty(self):
        with pytest.raises(ValueError):
            verification_report([])
