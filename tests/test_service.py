"""The warm evaluation service: endpoints, reuse, shutdown, client."""

import os
import signal
import socket
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.client import ServiceClient
from repro.description.jsonio import to_dict
from repro.devices import build_device
from repro.dsl import dumps
from repro.engine import EvaluationSession
from repro.errors import ServiceError
from repro.analysis.sensitivity import sensitivity
from repro.schemes import compare_schemes
from repro.service import create_service
from repro.service.jsonapi import (device_from_payload,
                                   evaluate_payload, sweep_kinds)


@pytest.fixture()
def service():
    svc = create_service(host="127.0.0.1", port=0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=5)
    assert not thread.is_alive()


@pytest.fixture()
def client(service):
    return ServiceClient(f"http://127.0.0.1:{service.server_port}")


class TestHealthAndStats:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0.0

    def test_stats_shape(self, client):
        client.evaluate(device={"node": 55})
        body = client.stats()
        engine = body["engine"]
        for key in ("hits", "misses", "size", "capacity",
                    "build_seconds", "disk_hits", "disk_writes",
                    "hit_rate", "lookups", "pool_retries",
                    "serial_fallbacks"):
            assert key in engine, key
        assert body["requests"]["/evaluate"] == 1
        assert body["requests_total"] >= 1
        assert body["uptime_seconds"] > 0.0
        assert body["cache_dir"] is None
        admission = body["admission"]
        for key in ("in_flight", "queued", "admitted", "shed_busy",
                    "shed_timeout", "shed_total", "max_in_flight",
                    "max_queued", "draining"):
            assert key in admission, key
        assert admission["admitted"] >= 1
        result_cache = body["result_cache"]
        for key in ("hits", "misses", "size", "capacity"):
            assert key in result_cache, key
        assert body["timeouts"] == 0

    def test_error_requests_are_counted(self, client):
        with pytest.raises(ServiceError):
            client.sweep("bogus")
        assert client.stats()["errors"] == 1


class TestEvaluate:
    def test_single_device_matches_library(self, client):
        result = client.evaluate(device={"node": 55})["results"][0]
        expected = EvaluationSession().evaluate(build_device(55))
        assert result["power_w"] == expected.power
        assert result["current_a"] == expected.current
        assert result["energy_per_bit_pj"] == \
            expected.energy_per_bit_pj
        assert result["operation_energy_pj"]["act"] > 0

    def test_batch_keeps_request_order(self, client):
        reply = client.evaluate(devices=[{"node": 55},
                                         {"node": 90}])
        assert reply["count"] == 2
        names = [entry["device"] for entry in reply["results"]]
        assert names == [build_device(55).name,
                         build_device(90).name]

    def test_pattern_override(self, client):
        result = client.evaluate(device={"node": 55},
                                 pattern="rd nop nop nop")
        assert "rd nop nop nop" in result["results"][0]["pattern"]

    def test_dsl_payload(self, client, ddr3_device):
        reply = client.evaluate(device={"dsl": dumps(ddr3_device)})
        assert reply["results"][0]["device"] == ddr3_device.name

    def test_json_payload(self, client, ddr3_device):
        reply = client.evaluate(
            device={"json": to_dict(ddr3_device)})
        assert reply["results"][0]["device"] == ddr3_device.name

    def test_second_identical_request_hits_warm_cache(self, client):
        client.evaluate(device={"node": 55})
        cold = client.stats()
        client.evaluate(device={"node": 55})
        warm = client.stats()
        # Answered from the memoized response: one more result-cache
        # hit, and the engine never even sees the repeat (no new
        # lookup, no cold build).
        assert warm["result_cache"]["hits"] == \
            cold["result_cache"]["hits"] + 1
        assert warm["engine"]["misses"] == cold["engine"]["misses"]
        assert warm["engine"]["lookups"] == cold["engine"]["lookups"]

    def test_missing_device_key_is_400(self, client):
        with pytest.raises(ServiceError) as failure:
            client.request("POST", "/evaluate", {"pattern": "rd nop"})
        assert failure.value.status == 400

    def test_unknown_builder_key_is_400(self, client):
        with pytest.raises(ServiceError) as failure:
            client.evaluate(device={"nodes": 55})
        assert failure.value.status == 400
        assert "unknown device keys" in str(failure.value)

    def test_bad_dsl_is_400_and_service_survives(self, client):
        with pytest.raises(ServiceError) as failure:
            client.evaluate(device={"dsl": "Garbage ="})
        assert failure.value.status == 400
        assert client.healthz()["status"] == "ok"


class TestSweep:
    def test_sensitivity_matches_library(self, client, ddr3_device):
        reply = client.sweep("sensitivity",
                             device={"json": to_dict(ddr3_device)},
                             variation=0.1)
        expected = sensitivity(ddr3_device, variation=0.1)
        assert [row["name"] for row in reply["rows"]] == \
            [result.name for result in expected]
        assert reply["rows"][0]["impact"] == \
            pytest.approx(expected[0].impact)
        assert reply["backend_requested"] == "auto"

    def test_corners_rows(self, client):
        reply = client.sweep("corners")
        assert len(reply["rows"]) == 4
        for row in reply["rows"]:
            assert row["min_ma"] <= row["typ_ma"] <= row["max_ma"]

    def test_trends_subset(self, client):
        reply = client.sweep("trends", nodes=[170, 90, 55])
        assert [row["node_nm"] for row in reply["rows"]] == \
            [170, 90, 55]

    def test_schemes_sorted_by_saving(self, client, ddr3_device):
        reply = client.sweep("schemes",
                             device={"json": to_dict(ddr3_device)})
        expected = compare_schemes(ddr3_device)
        assert [row["scheme"] for row in reply["rows"]] == \
            [result.scheme for result in expected]

    def test_unknown_kind_is_400(self, client):
        with pytest.raises(ServiceError) as failure:
            client.sweep("montecarlo")
        assert failure.value.status == 400
        for kind in sweep_kinds():
            assert kind in str(failure.value)

    def test_invalid_jobs_is_400(self, client):
        with pytest.raises(ServiceError) as failure:
            client.sweep("sensitivity", jobs=0)
        assert failure.value.status == 400

    def test_sweeps_share_the_session_cache(self, client):
        client.sweep("sensitivity", variation=0.1)
        before = client.stats()["engine"]
        client.sweep("sensitivity", variation=0.1)
        after = client.stats()["engine"]
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]


class TestTransport:
    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as failure:
            client.request("GET", "/models")
        assert failure.value.status == 404

    def test_post_to_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as failure:
            client.request("POST", "/evaluate/extra", {"device": {}})
        assert failure.value.status == 404

    def test_invalid_json_body_is_400(self, client, service):
        url = f"http://127.0.0.1:{service.server_port}/evaluate"
        request = urllib.request.Request(
            url, data=b"not json", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as failure:
            urllib.request.urlopen(request, timeout=10)
        assert failure.value.code == 400

    def test_unreachable_service_raises_status_zero(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError) as failure:
            client.healthz()
        assert failure.value.status == 0

    def test_client_rejects_ambiguous_evaluate(self):
        client = ServiceClient("http://127.0.0.1:9")
        with pytest.raises(ServiceError):
            client.evaluate()
        with pytest.raises(ServiceError):
            client.evaluate(device={}, devices=[{}])


class TestShutdown:
    def test_drains_and_joins_handler_threads(self, service, client):
        assert service.daemon_threads is False
        assert service.block_on_close is True
        assert client.healthz()["status"] == "ok"

    def test_signal_handler_stops_the_serve_loop(self):
        svc = create_service(host="127.0.0.1", port=0)
        thread = threading.Thread(target=svc.serve_forever,
                                  daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{svc.server_port}")
        assert client.wait_until_ready(5)
        svc._handle_signal(signal.SIGTERM, None)
        thread.join(timeout=5)
        assert not thread.is_alive()
        svc.server_close()


class TestJsonApiDirect:
    """The HTTP-free API surface used by other front ends."""

    def test_default_payload_is_mainstream_device(self):
        device = device_from_payload({})
        assert device.name == build_device(55).name

    def test_datarate_accepts_quantity_strings(self):
        device = device_from_payload({"node": 55,
                                      "datarate": "1.6Gbps"})
        assert device.spec.datarate == pytest.approx(1.6e9)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ServiceError):
            device_from_payload(["node", 55])

    def test_evaluate_requires_object_body(self):
        with pytest.raises(ServiceError):
            evaluate_payload(EvaluationSession(), [1, 2, 3])

    def test_empty_device_list_rejected(self):
        with pytest.raises(ServiceError):
            evaluate_payload(EvaluationSession(), {"devices": []})


class TestServeSubprocess:
    """`repro serve` end to end: start, query, SIGTERM, clean exit."""

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        root = Path(__file__).parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(port),
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            assert client.wait_until_ready(timeout=30)
            reply = client.evaluate(device={"node": 55})
            assert reply["results"][0]["power_w"] > 0
            stats = client.stats()
            assert stats["engine"]["disk_writes"] == 1
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)
        assert process.returncode == 0
        assert "listening" in out
        assert "stopped" in out
