"""Unit parsing/formatting tests, including hypothesis round trips."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import (
    SI_PREFIXES,
    _FORMAT_PREFIXES,
    format_quantity,
    milli,
    parse_quantity,
    parse_ratio,
    pj_per_bit,
)


class TestParseQuantity:
    def test_nanometres(self):
        assert parse_quantity("165nm") == pytest.approx(165e-9)

    def test_micrometres(self):
        assert parse_quantity("3396um") == pytest.approx(3396e-6)

    def test_micro_sign(self):
        assert parse_quantity("2µm") == pytest.approx(2e-6)

    def test_gigabit_per_second(self):
        assert parse_quantity("1.6Gbps") == pytest.approx(1.6e9)

    def test_megahertz(self):
        assert parse_quantity("800MHz") == pytest.approx(800e6)

    def test_femtofarad(self):
        assert parse_quantity("25fF") == pytest.approx(25e-15)

    def test_percent_returns_fraction(self):
        assert parse_quantity("25%") == pytest.approx(0.25)

    def test_plain_number(self):
        assert parse_quantity("42") == 42.0

    def test_plain_float(self):
        assert parse_quantity("0.15") == pytest.approx(0.15)

    def test_scientific_notation(self):
        assert parse_quantity("2.5e-10") == pytest.approx(2.5e-10)

    def test_scientific_with_unit(self):
        assert parse_quantity("1e2nm") == pytest.approx(100e-9)

    def test_capacitance_per_micron(self):
        # 0.2 fF/um == 2e-10 F/m
        assert parse_quantity("0.2fF/um") == pytest.approx(2e-10)

    def test_volts(self):
        assert parse_quantity("1.5V") == 1.5

    def test_milliamp(self):
        assert parse_quantity("4mA") == pytest.approx(4e-3)

    def test_nanoseconds(self):
        assert parse_quantity("50ns") == pytest.approx(50e-9)

    def test_microseconds(self):
        assert parse_quantity("7.8us") == pytest.approx(7.8e-6)

    def test_negative_value(self):
        assert parse_quantity("-3nm") == pytest.approx(-3e-9)

    def test_numeric_passthrough(self):
        assert parse_quantity(7) == 7.0
        assert parse_quantity(1.5) == 1.5

    def test_square_millimetres(self):
        assert parse_quantity("60mm2") == pytest.approx(60e-6)

    def test_rejects_garbage(self):
        with pytest.raises(UnitError):
            parse_quantity("fast")

    def test_rejects_unknown_unit(self):
        with pytest.raises(UnitError):
            parse_quantity("3parsec")

    def test_rejects_empty(self):
        with pytest.raises(UnitError):
            parse_quantity("")

    def test_expected_unit_mismatch(self):
        with pytest.raises(UnitError):
            parse_quantity("3V", expect_unit="m")

    def test_expected_unit_match(self):
        assert parse_quantity("3nm", expect_unit="m") == pytest.approx(3e-9)

    def test_expected_unit_allows_bare_number(self):
        assert parse_quantity("3", expect_unit="m") == 3.0


class TestParseRatio:
    def test_one_to_eight(self):
        assert parse_ratio("1:8") == 8.0

    def test_two_to_eight(self):
        assert parse_ratio("2:8") == 4.0

    def test_plain_number(self):
        assert parse_ratio("8") == 8.0

    def test_numeric_passthrough(self):
        assert parse_ratio(4) == 4.0

    def test_rejects_zero_term(self):
        with pytest.raises(UnitError):
            parse_ratio("0:8")

    def test_rejects_garbage(self):
        with pytest.raises(UnitError):
            parse_ratio("a:b")


class TestFormatQuantity:
    def test_nanometres(self):
        assert format_quantity(1.65e-7, "m") == "165nm"

    def test_milliamps(self):
        assert format_quantity(0.0786, "A") == "78.6mA"

    def test_zero(self):
        assert format_quantity(0.0, "V") == "0V"

    def test_unity(self):
        assert format_quantity(1.5, "V") == "1.5V"

    def test_giga(self):
        assert format_quantity(1.6e9, "bps") == "1.6Gbps"

    def test_non_finite(self):
        assert "inf" in format_quantity(math.inf, "W")

    @given(st.floats(min_value=1e-15, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_round_trip(self, value):
        text = format_quantity(value, "m", digits=12)
        assert parse_quantity(text) == pytest.approx(value, rel=1e-9)


class TestHelpers:
    def test_pj_per_bit_identity(self):
        # 1 W at 1 Gb/s is 1000 pJ/bit == 1000 mW/Gbps.
        assert pj_per_bit(1.0, 1e9) == pytest.approx(1000.0)

    def test_pj_per_bit_rejects_zero_rate(self):
        with pytest.raises(UnitError):
            pj_per_bit(1.0, 0.0)

    def test_milli(self):
        assert milli(0.5) == 500.0


class TestPrefixRoundTrips:
    """Every SI prefix the module knows, both directions."""

    @pytest.mark.parametrize("prefix,factor",
                             sorted(SI_PREFIXES.items()))
    def test_parse_accepts_every_prefix(self, prefix, factor):
        assert parse_quantity(f"2.5{prefix}V") == \
            pytest.approx(2.5 * factor)

    @pytest.mark.parametrize("factor,prefix", _FORMAT_PREFIXES)
    def test_format_then_parse_recovers_value(self, factor, prefix):
        value = 3.25 * factor
        text = format_quantity(value, "A")
        assert text == f"3.25{prefix}A"
        assert parse_quantity(text) == pytest.approx(value)

    @pytest.mark.parametrize("factor,prefix", _FORMAT_PREFIXES)
    def test_negative_values_round_trip_too(self, factor, prefix):
        value = -1.75 * factor
        text = format_quantity(value, "W")
        assert parse_quantity(text) == pytest.approx(value)

    @pytest.mark.parametrize("prefix,factor",
                             sorted(SI_PREFIXES.items()))
    def test_parse_then_format_is_stable(self, prefix, factor):
        # Formatting what we parsed and parsing it again must land on
        # the same float: the two prefix tables agree on magnitudes.
        parsed = parse_quantity(f"4.5{prefix}Hz")
        again = parse_quantity(format_quantity(parsed, "Hz"))
        assert again == pytest.approx(parsed)
