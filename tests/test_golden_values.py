"""Golden-value regression tests.

These lock in the calibrated model's headline numbers with generous but
meaningful bands, so silent regressions of the physics or the calibration
are caught immediately.  If a deliberate recalibration moves a value,
update the band *and* EXPERIMENTS.md together.
"""

import pytest

from repro import Command, DramPowerModel
from repro.circuits import column, wordline
from repro.core.idd import idd0, idd2n, idd4r, idd7_mixed
from repro.devices import ddr3_2g_55nm


@pytest.fixture(scope="module")
def model():
    return DramPowerModel(ddr3_2g_55nm())


class TestHeadlineCurrents:
    """The 2 Gb DDR3-1600 x16 55 nm reference device."""

    def test_idd0(self, model):
        assert idd0(model).milliamps == pytest.approx(70.6, rel=0.15)

    def test_idd2n(self, model):
        assert idd2n(model).milliamps == pytest.approx(40.8, rel=0.15)

    def test_idd4r(self, model):
        assert idd4r(model).milliamps == pytest.approx(160.0, rel=0.15)

    def test_energy_per_bit(self, model):
        assert idd7_mixed(model).energy_per_bit_pj == pytest.approx(
            18.1, rel=0.15)


class TestOperationEnergies:
    def test_activate_energy(self, model):
        # Dominated by 16384 bitlines × ~100 fF × Vbl/2 through the Vbl
        # regulator: a couple of nanojoules.
        energy = model.operation_energy(Command.ACT)
        assert energy == pytest.approx(2.2e-9, rel=0.3)

    def test_read_energy(self, model):
        energy = model.operation_energy(Command.RD)
        assert energy == pytest.approx(1.15e-9, rel=0.3)

    def test_precharge_energy(self, model):
        energy = model.operation_energy(Command.PRE)
        assert energy == pytest.approx(0.6e-9, rel=0.5)


class TestCircuitCapacitances:
    """Absolute capacitance sanity at the 55 nm calibration point."""

    def test_local_wordline_tens_of_femtofarad(self, model):
        cap = wordline.local_wordline_capacitance(model.device)
        assert 10e-15 < cap < 100e-15

    def test_master_wordline_sub_picofarad(self, model):
        cap = wordline.master_wordline_capacitance(model.device,
                                                   model.geometry)
        assert 0.1e-12 < cap < 2e-12

    def test_csl_about_a_picofarad(self, model):
        cap = column.csl_capacitance(model.device, model.geometry)
        assert 0.3e-12 < cap < 3e-12

    def test_master_dataline_sub_picofarad(self, model):
        cap = column.master_dataline_capacitance(model.device,
                                                 model.geometry)
        assert 0.2e-12 < cap < 2e-12


class TestGeometryGolden:
    def test_die_area(self, model):
        assert model.geometry.die_area * 1e6 == pytest.approx(66.7,
                                                              rel=0.1)

    def test_block_matches_paper_sample(self, model):
        # The paper's Figure 1 sample lists A1 = 3396 µm for a DDR3-era
        # array block; our derived 55 nm block lands in the same range.
        height = model.geometry.array_block.height
        assert 2.5e-3 < height < 4.5e-3
