"""Tests for process-corner sweeps and peak-current estimation."""

import pytest

from repro import Command, DramPowerModel, Rail
from repro.analysis.corners import (
    Corner,
    STANDARD_CORNERS,
    VENDOR_SPREAD_CORNERS,
    corner_sweep,
)
from repro.analysis.peak_current import (
    peak_current,
    peak_current_table,
    peak_to_average_ratio,
)
from repro.core.idd import IddMeasure
from repro.errors import ModelError


class TestCorners:
    def test_identity_corner(self, ddr3_device):
        typical = Corner("typical")
        assert typical.apply(ddr3_device) == ddr3_device

    def test_corner_scales_groups(self, ddr3_device):
        shifted = Corner("hot", capacitance=1.2).apply(ddr3_device)
        assert shifted.technology.c_bitline == pytest.approx(
            1.2 * ddr3_device.technology.c_bitline
        )
        # Voltages untouched by a capacitance-only corner.
        assert shifted.voltages == ddr3_device.voltages

    def test_sweep_band_ordering(self, ddr3_device):
        for band in corner_sweep(ddr3_device):
            assert band.minimum <= band.typical <= band.maximum

    def test_fast_corner_draws_less(self, ddr3_device):
        bands = {band.measure: band for band in corner_sweep(ddr3_device)}
        idd4 = bands[IddMeasure.IDD4R]
        assert idd4.values_ma["fast"] < idd4.values_ma["typical"] \
            < idd4.values_ma["slow"]

    def test_spread_figure(self, ddr3_device):
        # The standard ±10 % corner set yields a double-digit-percent
        # spread, the vendor set a wider one — the §IV.A observation.
        standard = corner_sweep(ddr3_device)[0].spread
        vendor = corner_sweep(ddr3_device,
                              corners=VENDOR_SPREAD_CORNERS)[0].spread
        assert 0.1 < standard < 0.5
        assert vendor > standard

    def test_empty_corner_set_rejected(self, ddr3_device):
        with pytest.raises(ModelError):
            corner_sweep(ddr3_device, corners=())

    def test_standard_set_has_typical(self):
        assert any(corner.name == "typical"
                   for corner in STANDARD_CORNERS)


class TestPeakCurrent:
    def test_activate_peaks_on_bitline_rail(self, ddr3_model):
        result = peak_current(ddr3_model, Command.ACT)
        assert result.worst_rail is Rail.VBL

    def test_column_commands_peak_on_vint(self, ddr3_model):
        for command in (Command.RD, Command.WR):
            result = peak_current(ddr3_model, command)
            assert result.worst_rail is Rail.VINT, command

    def test_activate_is_the_worst_transient(self, ddr3_model):
        table = peak_current_table(ddr3_model)
        assert table[0].command in (Command.ACT, Command.WR)
        currents = [entry.vdd_current for entry in table]
        assert currents == sorted(currents, reverse=True)

    def test_peak_well_above_average(self, ddr3_model):
        # The activate transient sits several times above the IDD0
        # average — decoupling territory.
        ratio = peak_to_average_ratio(ddr3_model)
        assert 1.5 < ratio < 20.0

    def test_precharge_transient_small(self, ddr3_model):
        act = peak_current(ddr3_model, Command.ACT).vdd_current
        pre = peak_current(ddr3_model, Command.PRE).vdd_current
        assert pre < 0.5 * act

    def test_magnitudes_are_sub_ampere(self, ddr3_model):
        # A commodity DDR3 activate bursts hundreds of milliamps, not
        # tens of amperes.
        for entry in peak_current_table(ddr3_model):
            assert entry.vdd_current < 2.0
