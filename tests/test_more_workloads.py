"""Tests for the copy and pointer-chase workloads plus dump --format."""

import json

import pytest

from repro import DramPowerModel
from repro.core.trace import evaluate_trace
from repro.description import Command
from repro.errors import ModelError
from repro.workloads import (
    copy_trace,
    pointer_chase_trace,
    streaming_trace,
)


class TestCopyTrace:
    def test_balanced_reads_and_writes(self, ddr3_device, ddr3_model):
        trace = copy_trace(ddr3_device, lines=4)
        result = evaluate_trace(ddr3_model, trace, strict=True)
        assert result.counts[Command.RD] == result.counts[Command.WR]
        per_page = (ddr3_device.spec.page_bits
                    // ddr3_device.spec.bits_per_access)
        assert result.counts[Command.RD] == 4 * per_page

    def test_streaming_like_locality(self, ddr3_device, ddr3_model):
        trace = copy_trace(ddr3_device, lines=4)
        result = evaluate_trace(ddr3_model, trace)
        assert result.row_hit_rate > 0.9

    def test_write_heavier_than_pure_read_stream(self, ddr3_device,
                                                 ddr3_model):
        copy = evaluate_trace(ddr3_model, copy_trace(ddr3_device, 4))
        per_page = (ddr3_device.spec.page_bits
                    // ddr3_device.spec.bits_per_access)
        stream = evaluate_trace(
            ddr3_model,
            streaming_trace(ddr3_device, 8 * per_page))
        # Same data volume; the copy's writes flip bitlines and cost a
        # little more per bit.
        assert copy.energy_per_bit > stream.energy_per_bit

    def test_lines_validated(self, ddr3_device):
        with pytest.raises(ModelError):
            copy_trace(ddr3_device, 0)


class TestPointerChase:
    def test_zero_hit_rate(self, ddr3_device, ddr3_model):
        trace = pointer_chase_trace(ddr3_device, 500, seed=2)
        result = evaluate_trace(ddr3_model, trace, strict=True)
        assert result.row_hit_rate < 0.05

    def test_most_expensive_per_bit(self, ddr3_device, ddr3_model):
        chase = evaluate_trace(ddr3_model,
                               pointer_chase_trace(ddr3_device, 500))
        stream = evaluate_trace(ddr3_model,
                                streaming_trace(ddr3_device, 500))
        assert chase.energy_per_bit > 2 * stream.energy_per_bit

    def test_reads_only(self, ddr3_device, ddr3_model):
        trace = pointer_chase_trace(ddr3_device, 200)
        result = evaluate_trace(ddr3_model, trace)
        assert result.counts[Command.WR] == 0


class TestDumpFormats:
    def test_dump_json_parses(self, capsys):
        from repro.cli import main
        assert main(["dump", "--node", "55", "--format", "json"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["interface"] == "DDR3"
        assert len(data["technology"]) == 39

    def test_json_dump_reloads(self, capsys, tmp_path, ddr3_device):
        from repro.cli import main
        from repro.description.jsonio import loads_json
        path = tmp_path / "device.json"
        assert main(["dump", "--node", "55", "--format", "json",
                     "-o", str(path)]) == 0
        restored = loads_json(path.read_text())
        assert DramPowerModel(restored).pattern_power().power > 0
