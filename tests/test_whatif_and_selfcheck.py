"""Tests for what-if sweeps and the model self-check."""

import pytest

from repro import DramPowerModel
from repro.analysis.whatif import (
    sensitivity_slope,
    sweep_parameter,
    sweep_report,
)
from repro.devices import build_device, generation_sweep
from repro.errors import ModelError


class TestSweep:
    def test_monotone_capacitance_sweep(self, ddr3_device):
        points = sweep_parameter(ddr3_device, "technology.c_bitline",
                                 [0.5, 1.0, 1.5])
        powers = [point.power for point in points]
        assert powers == sorted(powers)
        assert points[1].factor == 1.0

    def test_values_scale(self, ddr3_device):
        points = sweep_parameter(ddr3_device, "voltages.vint",
                                 [0.9, 1.0])
        assert points[0].value == pytest.approx(
            0.9 * ddr3_device.voltages.vint)

    def test_custom_evaluator(self, ddr3_device):
        from repro.core.idd import idd4r
        points = sweep_parameter(
            ddr3_device, "technology.c_wire_signal", [1.0],
            evaluate=lambda model: idd4r(model).power,
        )
        base = idd4r(DramPowerModel(ddr3_device))
        assert points[0].power == pytest.approx(base.power.power)

    def test_empty_factors_rejected(self, ddr3_device):
        with pytest.raises(ModelError):
            sweep_parameter(ddr3_device, "voltages.vint", [])

    def test_non_numeric_path_rejected(self, ddr3_device):
        with pytest.raises(ModelError):
            sweep_parameter(ddr3_device, "name", [1.0])

    def test_report_renders(self, ddr3_device):
        points = sweep_parameter(ddr3_device, "technology.c_bitline",
                                 [0.8, 1.0, 1.2])
        text = sweep_report("technology.c_bitline", points, unit="F")
        assert "technology.c_bitline" in text
        assert "pJ/bit" in text


class TestSlope:
    def test_wire_cap_slope_fractional(self, ddr3_device):
        slope = sensitivity_slope(ddr3_device,
                                  "technology.c_wire_signal")
        # Wire capacitance carries part of the power: slope strictly
        # between 0 and 1.
        assert 0.02 < slope < 0.6

    def test_irrelevant_parameter_near_zero(self, ddr3_device):
        slope = sensitivity_slope(ddr3_device,
                                  "technology.w_blmux")
        # The bitline-mux devices exist only on folded parts; the open
        # 55 nm device barely notices them.
        assert abs(slope) < 0.01

    def test_slopes_sum_sanity(self, ddr3_device):
        # Capacitance-ish slopes are each below the proportionality
        # line.
        for path in ("technology.c_bitline", "technology.c_cell"):
            assert 0 <= sensitivity_slope(ddr3_device, path) < 1.0


class TestSelfCheck:
    def test_reference_device_clean(self, ddr3_model):
        assert ddr3_model.self_check() == []

    def test_whole_roadmap_clean(self):
        for device in generation_sweep():
            issues = DramPowerModel(device).self_check()
            assert issues == [], device.name

    def test_mobile_clean(self):
        from repro.devices import build_mobile_device
        assert DramPowerModel(build_mobile_device(55)).self_check() == []

    def test_detects_broken_event(self, ddr3_device, ddr3_model):
        broken = ddr3_model.events[0].scaled(
            capacitance=float("nan"))
        model = DramPowerModel(
            ddr3_device, events=(broken,) + ddr3_model.events[1:])
        assert model.self_check() != []
