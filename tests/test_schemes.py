"""Tests for the Section V power-reduction scheme evaluation."""

import pytest

from repro.core import DramPowerModel
from repro.errors import SchemeError
from repro.schemes import (
    ALL_SCHEMES,
    CslRatioReduction,
    LowVoltageOperation,
    MiniRank,
    SegmentedDataLines,
    SelectiveBitlineActivation,
    SingleSubarrayAccess,
    ThreadedModule,
    TsvStacking,
    compare_schemes,
    scheme_report,
)


@pytest.fixture(scope="module")
def results(ddr3_device):
    return {result.scheme: result
            for result in compare_schemes(ddr3_device)}


class TestEvaluationMechanics:
    def test_all_schemes_evaluated(self, results):
        assert len(results) == len(ALL_SCHEMES)

    def test_baselines_identical(self, results):
        baselines = {round(result.baseline.power, 9)
                     for result in results.values()}
        assert len(baselines) == 1

    def test_every_scheme_saves_power(self, results):
        for name, result in results.items():
            assert result.power_saving > 0, name

    def test_report_renders(self, results):
        text = scheme_report(results.values(), title="Section V")
        assert "selective-bitline-activation" in text
        assert "area overhead" in text


class TestSelectiveBitlineActivation:
    def test_activation_fraction(self, ddr3_model):
        scheme = SelectiveBitlineActivation()
        # One 128-bit access needs a single 512-bit sub-wordline of the
        # 32 the full page spans.
        assert scheme.activation_fraction(ddr3_model) == pytest.approx(
            1.0 / 32.0
        )

    def test_slashes_activate_energy(self, results):
        result = results["selective-bitline-activation"]
        assert result.act_energy_saving > 0.7

    def test_small_area_cost(self, results):
        assert 0 < results["selective-bitline-activation"].area_overhead \
            < 0.05


class TestSingleSubarrayAccess:
    def test_same_energy_as_sba_here(self, results):
        # With a 128-bit access inside one 512-bit sub-wordline, SBA
        # already activates a single sub-array, so SSA saves the same
        # energy — but pays much more area (the paper's §V argument).
        sba = results["selective-bitline-activation"]
        ssa = results["single-subarray-access"]
        assert ssa.power_saving == pytest.approx(sba.power_saving,
                                                 rel=1e-6)
        assert ssa.area_overhead > 2 * sba.area_overhead


class TestCslRatioReduction:
    def test_activates_quarter_page(self, ddr3_model):
        # 8:1 page-to-access: 8 × 128 = 1024 bits of 16384 = 1/16.
        scheme = CslRatioReduction()
        events = scheme.transform_events(ddr3_model)
        swing = [event for event in events
                 if event.name == "bitline swing"][0]
        assert swing.count == pytest.approx(16384 / 16)

    def test_no_area_cost(self, results):
        # The paper argues the 8:1 architecture reuses metal-3 tracks
        # without growing the sense-amplifier stripe.
        assert results["csl-ratio-reduction"].area_overhead == 0.0

    def test_saves_less_than_sba(self, results):
        sba = results["selective-bitline-activation"]
        csl = results["csl-ratio-reduction"]
        assert 0 < csl.power_saving <= sba.power_saving


class TestLowVoltage:
    def test_voltages_scaled(self, ddr3_device):
        scheme = LowVoltageOperation(vdd=1.2)
        modified = scheme.transform_device(ddr3_device)
        assert modified.voltages.vdd == pytest.approx(1.2)
        assert modified.voltages.vint < ddr3_device.voltages.vint
        assert modified.voltages.vpp < ddr3_device.voltages.vpp

    def test_saves_across_all_operations(self, results):
        result = results["low-voltage-operation"]
        assert result.power_saving > 0.2
        assert result.act_energy_saving > 0.2

    def test_rejects_non_reduction(self, ddr3_device):
        with pytest.raises(SchemeError):
            LowVoltageOperation(vdd=1.8).transform_device(ddr3_device)


class TestWiringSchemes:
    def test_segmented_datalines_only_touch_datapath(self, ddr3_model):
        scheme = SegmentedDataLines(remaining_fraction=0.5)
        events = dict()
        for before, after in zip(ddr3_model.events,
                                 scheme.transform_events(ddr3_model)):
            events[before.name] = (before.capacitance, after.capacitance)
        for name, (before, after) in events.items():
            if name.startswith("net Data") and "IO" not in name:
                assert after == pytest.approx(0.5 * before), name
            elif name == "bitline swing":
                assert after == before

    def test_segmented_fraction_validated(self):
        with pytest.raises(SchemeError):
            SegmentedDataLines(remaining_fraction=0.0)

    def test_tsv_reduces_io_events(self, ddr3_model):
        scheme = TsvStacking(io_fraction=0.5)
        for before, after in zip(ddr3_model.events,
                                 scheme.transform_events(ddr3_model)):
            if before.component.value == "io":
                assert after.capacitance == pytest.approx(
                    0.5 * before.capacitance
                )


class TestSystemLevelSchemes:
    def test_mini_rank_halves_activate_rate(self, ddr3_model):
        from repro.description import Command
        scheme = MiniRank(rank_divisor=2)
        counts, _ = scheme.pattern_counts(ddr3_model)
        base_counts = MiniRank(rank_divisor=1).pattern_counts(ddr3_model)[0]
        assert counts[Command.ACT] == base_counts[Command.ACT] / 2

    def test_mini_rank_unchanged_act_energy(self, results):
        # Mini-rank saves by issuing fewer activates, not cheaper ones.
        assert results["mini-rank"].act_energy_saving == pytest.approx(0.0)

    def test_threaded_module_halves_activation(self, results):
        result = results["threaded-module"]
        assert 0.3 < result.act_energy_saving < 0.6

    def test_divisor_validation(self):
        with pytest.raises(SchemeError):
            MiniRank(rank_divisor=0)
        with pytest.raises(SchemeError):
            ThreadedModule(threads=0)


class TestOrderings:
    """Qualitative §V conclusions that must hold on the DDR3 device."""

    def test_activation_narrowing_beats_wiring_tricks(self, results):
        assert (results["selective-bitline-activation"].power_saving
                > results["segmented-data-lines"].power_saving)

    def test_low_voltage_is_broadly_effective(self, results):
        # V² scaling cuts deep without touching the architecture.
        assert results["low-voltage-operation"].power_saving > \
            results["segmented-data-lines"].power_saving

    def test_modified_models_still_valid(self, ddr3_device):
        for scheme in ALL_SCHEMES:
            result = scheme.evaluate(ddr3_device)
            assert result.modified.power > 0, scheme.name
            model = DramPowerModel(scheme.transform_device(ddr3_device))
            assert model.pattern_power().power > 0, scheme.name
