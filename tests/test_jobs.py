"""Durable job layer: journal, spec planning, store, runner resume.

The acceptance bar these tests enforce: a job interrupted by SIGKILL
mid-chunk, at a chunk boundary, or during the journal write itself
resumes from the last durable checkpoint and produces a result
*bit-for-bit identical* to an uninterrupted run — no journaled chunk
re-computed, no journaled chunk lost.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import EvaluationSession
from repro.errors import JobError, JobNotFound, ServiceError
from repro.jobs import (DEFAULT_CHUNK_SIZE, JobJournal, JobManager,
                        JobRunner, JobSpec, JobStore, parse_job_spec,
                        plan_job)
from repro.service.faults import FaultInjector, FaultRule

MC_PAYLOAD = {"kind": "montecarlo",
              "params": {"samples": 10, "seed": 7},
              "chunk_size": 3}

#: Keyed variant: both sides of a byte-parity comparison submit with
#: the same key, so the job id (embedded in result.json) matches.
MC_KEYED = dict(MC_PAYLOAD, idempotency_key="parity")


def _result_bytes(root, job_id):
    return (Path(root) / job_id / "result.json").read_bytes()


def _run_all(root, **kwargs):
    manager = JobManager(str(root), session=EvaluationSession(),
                         **kwargs)
    manager.run_pending()
    return manager


# ----------------------------------------------------------------------
# Journal durability.
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append_chunk(0, [1.5, 2.5])
        journal.append_chunk(1, [[3.0, 4.0]])
        replayed = JobJournal(tmp_path).replay()
        assert replayed == {0: [1.5, 2.5], 1: [[3.0, 4.0]]}

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append_chunk(0, ["a"])
        journal.append_chunk(1, ["b"])
        raw = journal.journal_path.read_bytes()
        # Cut the final line in half: the torn-write crash shape.
        journal.journal_path.write_bytes(raw[:len(raw) - 6])
        replayed = JobJournal(tmp_path).replay()
        assert replayed == {0: ["a"]}

    def test_malformed_interior_line_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append_chunk(0, ["a"])
        with open(journal.journal_path, "ab") as handle:
            handle.write(b"{not json}\n")
        journal.append_chunk(2, ["c"])
        assert JobJournal(tmp_path).replay() == {0: ["a"], 2: ["c"]}

    def test_compaction_preserves_replay(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append_chunk(0, [1.25])
        journal.append_chunk(1, [2.75])
        journal.compact(journal.replay())
        assert journal.journal_records == 0
        assert journal.journal_path.read_bytes() == b""
        journal.append_chunk(2, [9.5])
        replayed = JobJournal(tmp_path).replay()
        assert replayed == {0: [1.25], 1: [2.75], 2: [9.5]}

    def test_duplicate_records_dedupe_by_index(self, tmp_path):
        # Crash window between snapshot rename and journal truncate:
        # both files hold chunk 0.  Replay must not double-count.
        journal = JobJournal(tmp_path)
        journal.append_chunk(0, [1.0])
        journal.compact({0: [1.0]})
        journal.append_chunk(0, [1.0])  # duplicate, same value
        journal.append_chunk(1, [2.0])
        assert JobJournal(tmp_path).replay() == {0: [1.0], 1: [2.0]}


# ----------------------------------------------------------------------
# Spec parsing and deterministic planning.
# ----------------------------------------------------------------------
class TestSpec:
    def test_parse_defaults(self):
        spec = parse_job_spec({"kind": "montecarlo",
                               "params": {"samples": 4}})
        assert spec.chunk_size == DEFAULT_CHUNK_SIZE
        assert spec.kind == "montecarlo"

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {"kind": "nope", "params": {}},
        {"kind": "montecarlo", "params": {"samples": 0}},
        {"kind": "montecarlo", "params": {"samples": "many"}},
        {"kind": "montecarlo", "params": {"samples": 4,
                                          "seed": "x"}},
        {"kind": "montecarlo", "params": {"samples": 4},
         "chunk_size": 0},
        {"kind": "montecarlo", "params": []},
        {"kind": "sweep", "params": {"kind": "bogus"}},
        {"kind": "evaluate", "params": {"devices": "x"}},
    ])
    def test_parse_rejects_malformed(self, payload):
        with pytest.raises(ServiceError):
            parse_job_spec(payload)

    def test_montecarlo_planning_is_deterministic(self):
        session = EvaluationSession()
        spec = JobSpec(kind="montecarlo",
                       params={"samples": 6, "seed": 3},
                       chunk_size=2)
        first = plan_job(spec, session)
        second = plan_job(spec, session)
        assert first.chunk_count == 3
        assert first.run_chunk(1) == second.run_chunk(1)

    def test_chunked_equals_single_chunk(self):
        """Chunk size never changes the assembled result."""
        session = EvaluationSession()
        params = {"samples": 7, "seed": 11}
        wide = plan_job(JobSpec("montecarlo", params, 7), session)
        narrow = plan_job(JobSpec("montecarlo", params, 2), session)
        whole = wide.assemble({0: wide.run_chunk(0)})
        pieces = narrow.assemble(
            {i: narrow.run_chunk(i)
             for i in range(narrow.chunk_count)})
        assert json.dumps(whole, sort_keys=True) \
            == json.dumps(pieces, sort_keys=True)

    def test_assemble_refuses_missing_chunk(self):
        session = EvaluationSession()
        plan = plan_job(JobSpec("montecarlo",
                                {"samples": 4, "seed": 1}, 2),
                        session)
        with pytest.raises(JobError):
            plan.assemble({0: plan.run_chunk(0)})

    def test_sweep_schemes_rows_match_buffered(self):
        from repro.schemes import ALL_SCHEMES
        session = EvaluationSession()
        plan = plan_job(JobSpec("sweep", {"kind": "schemes"}, 8),
                        session)
        result = plan.assemble({0: plan.run_chunk(0)})
        assert result["count"] == len(ALL_SCHEMES)
        assert [row["scheme"] for row in result["rows"]] \
            == [scheme.name for scheme in ALL_SCHEMES]

    def test_evaluate_plan_matches_endpoint_shape(self):
        session = EvaluationSession()
        plan = plan_job(
            JobSpec("evaluate", {"devices": [{}, {"node": 65}]}, 1),
            session)
        result = plan.assemble({0: plan.run_chunk(0),
                                1: plan.run_chunk(1)})
        assert result["count"] == 2
        assert all("pattern" in r for r in result["results"])


# ----------------------------------------------------------------------
# The trace job kind: durable rank-sharded file replay.
# ----------------------------------------------------------------------
def _trace_file(tmp_path, transactions=3000):
    lines = []
    state = 12345
    for i in range(transactions):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        op = "P_MEM_WR" if i % 3 == 0 else "P_MEM_RD"
        lines.append(f"0x{(state << 6) & 0x3FFFFFFF:x} {op} {i * 4}")
    path = tmp_path / "job.trc"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestTracePlan:
    def _payload(self, path, chunk_size=1):
        return {"kind": "trace",
                "params": {"device": {"node": 55}, "path": path,
                           "decoder": {"channel_bits": 1,
                                       "rank_bits": 1}},
                "chunk_size": chunk_size}

    def test_validation_rejects_bad_params(self, tmp_path):
        path = _trace_file(tmp_path, 10)
        good = self._payload(path)
        parse_job_spec(good)  # sanity: the base payload is accepted
        for mutate in (
                lambda p: p["params"].pop("path"),
                lambda p: p["params"].update(path="/no/such/file"),
                lambda p: p["params"].update(format="xml"),
                lambda p: p["params"].update(clock=-1),
                lambda p: p["params"].update(strict=True),
                lambda p: p["params"].update(
                    decoder={"policy": "diagonal"}),
                lambda p: p["params"].update(
                    decoder={"channel_bits": -1}),
        ):
            payload = self._payload(path)
            mutate(payload)
            with pytest.raises(ServiceError):
                parse_job_spec(payload)

    def test_plan_units_are_shards(self, tmp_path):
        session = EvaluationSession()
        spec = parse_job_spec(self._payload(_trace_file(tmp_path,
                                                        50)))
        plan = plan_job(spec, session)
        assert plan.units == 4  # 1 channel bit + 1 rank bit
        assert plan.chunk_count == 4

    def test_assembled_result_matches_library(self, tmp_path):
        from repro.trace import AddressDecoder, evaluate_trace_file

        session = EvaluationSession()
        path = _trace_file(tmp_path)
        spec = parse_job_spec(self._payload(path, chunk_size=2))
        plan = plan_job(spec, session)
        chunks = {i: plan.run_chunk(i)
                  for i in range(plan.chunk_count)}
        result = plan.assemble(chunks)
        decoder = AddressDecoder.from_device(plan.device,
                                             channel_bits=1,
                                             rank_bits=1)
        reference = evaluate_trace_file(
            session.model(plan.device), path, decoder=decoder,
            backend="serial")
        assert result["result"]["energy_j"] == reference.energy
        assert result["result"]["duration_s"] == reference.duration
        assert result["result"]["row_hits"] == reference.row_hits
        assert result["shards"] == 4

    def test_chunked_equals_single_chunk(self, tmp_path):
        session = EvaluationSession()
        path = _trace_file(tmp_path, 800)
        wide = plan_job(parse_job_spec(self._payload(path, 4)),
                        session)
        narrow = plan_job(parse_job_spec(self._payload(path, 1)),
                          session)
        whole = wide.assemble({0: wide.run_chunk(0)})
        pieces = narrow.assemble(
            {i: narrow.run_chunk(i)
             for i in range(narrow.chunk_count)})
        assert json.dumps(whole, sort_keys=True) \
            == json.dumps(pieces, sort_keys=True)

    def test_states_survive_json_round_trip(self, tmp_path):
        """Chunk results journal as JSON; replayed chunks must
        assemble bit-identically to fresh ones."""
        session = EvaluationSession()
        plan = plan_job(
            parse_job_spec(self._payload(_trace_file(tmp_path, 600),
                                         2)), session)
        chunks = {i: plan.run_chunk(i)
                  for i in range(plan.chunk_count)}
        wired = {i: json.loads(json.dumps(chunk))
                 for i, chunk in chunks.items()}
        assert plan.assemble(wired) == plan.assemble(chunks)

    def test_partial_reports_shard_progress(self, tmp_path):
        session = EvaluationSession()
        plan = plan_job(
            parse_job_spec(self._payload(_trace_file(tmp_path, 200),
                                         2)), session)
        progress = plan.partial({0: plan.run_chunk(0)})
        assert progress["units_done"] == 2
        assert progress["units_total"] == 4
        assert progress["commands"] > 0

    def test_durable_run_produces_result(self, tmp_path):
        path = _trace_file(tmp_path, 400)
        manager = JobManager(str(tmp_path / "jobs"),
                             session=EvaluationSession())
        job_id = manager.submit(self._payload(path, 2))["job"]
        manager.run_pending()
        record = manager.status(job_id)
        assert record["state"] == "done"
        result = json.loads(_result_bytes(tmp_path / "jobs", job_id))
        assert result["result"]["kind"] == "trace"
        assert result["result"]["commands"] > 0


# ----------------------------------------------------------------------
# Store: idempotency, claims, cancel, GC.
# ----------------------------------------------------------------------
class TestStore:
    def test_keyed_submit_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        payload = dict(MC_PAYLOAD, idempotency_key="k")
        first, created = store.submit(payload)
        again, recreated = store.submit(payload)
        assert created and not recreated
        assert first["job"] == again["job"]

    def test_same_key_different_spec_conflicts(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(dict(MC_PAYLOAD, idempotency_key="k"))
        other = dict(MC_PAYLOAD, chunk_size=5, idempotency_key="k")
        with pytest.raises(ServiceError) as caught:
            store.submit(other)
        assert caught.value.status == 409

    def test_unkeyed_submits_are_distinct(self, tmp_path):
        store = JobStore(tmp_path)
        first, _ = store.submit(MC_PAYLOAD)
        second, _ = store.submit(MC_PAYLOAD)
        assert first["job"] != second["job"]

    def test_claim_is_exclusive(self, tmp_path):
        store = JobStore(tmp_path)
        status, _ = store.submit(MC_PAYLOAD)
        claim = store.claim(status["job"])
        assert claim is not None
        assert store.claim(status["job"]) is None
        claim.release()
        retry = store.claim(status["job"])
        assert retry is not None
        retry.release()

    def test_unknown_job_raises_not_found(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobNotFound):
            store.status("jdoesnotexist0000")

    def test_cancel_pending_finalises_immediately(self, tmp_path):
        store = JobStore(tmp_path)
        status, _ = store.submit(MC_PAYLOAD)
        after = store.request_cancel(status["job"])
        assert after["state"] == "cancelled"

    def test_cancel_running_sets_marker_only(self, tmp_path):
        store = JobStore(tmp_path)
        status, _ = store.submit(MC_PAYLOAD)
        claim = store.claim(status["job"])  # a live runner owns it
        after = store.request_cancel(status["job"])
        assert after["state"] == "pending"
        assert after["cancel_requested"] is True
        claim.release()

    def test_gc_reaps_only_stale_terminal_jobs(self, tmp_path):
        now = [1000.0]
        store = JobStore(tmp_path, clock=lambda: now[0])
        done, _ = store.submit(dict(MC_PAYLOAD, idempotency_key="a"))
        live, _ = store.submit(dict(MC_PAYLOAD, idempotency_key="b"))
        store.write_status(done["job"], state="done")
        now[0] += 10.0
        assert store.gc(ttl=60.0) == 0
        now[0] += 100.0
        assert store.gc(ttl=60.0) == 1
        ids = {status["job"] for status in store.list_jobs()}
        assert ids == {live["job"]}

    def test_runnable_prefers_assigned_then_unassigned(self, tmp_path):
        store = JobStore(tmp_path)
        mine, _ = store.submit(dict(MC_PAYLOAD, idempotency_key="m"))
        free, _ = store.submit(dict(MC_PAYLOAD, idempotency_key="f"))
        other, _ = store.submit(dict(MC_PAYLOAD, idempotency_key="o"))
        store.write_status(mine["job"], assigned=3)
        store.write_status(other["job"], assigned=9)
        assert store.runnable_jobs(worker_id=3) == [
            mine["job"], free["job"], other["job"]]

    def test_running_with_live_owner_not_runnable(self, tmp_path):
        store = JobStore(tmp_path)
        status, _ = store.submit(MC_PAYLOAD)
        store.write_status(status["job"], state="running",
                           pid=os.getpid())
        assert store.runnable_jobs() == []

    def test_orphan_reassignment(self, tmp_path):
        store = JobStore(tmp_path)
        status, _ = store.submit(MC_PAYLOAD)
        store.write_status(status["job"], state="running",
                           pid=99999999)  # dead owner
        moved = store.reassign_orphans({0: {}, 1: {}})
        assert moved == 1
        after = store.status(status["job"])
        assert after["assigned"] in (0, 1)
        assert after["orphaned"] is True
        assert store.runnable_jobs() == [status["job"]]


# ----------------------------------------------------------------------
# Runner and manager: execution, cancel, resume accounting.
# ----------------------------------------------------------------------
class TestRunner:
    def test_runs_to_done_with_progress(self, tmp_path):
        store = JobStore(tmp_path)
        status, _ = store.submit(MC_PAYLOAD)
        manager = _run_all(tmp_path)
        after = store.status(status["job"])
        assert after["state"] == "done"
        assert after["chunks_done"] == after["chunks_total"] == 4
        assert after["replayed_chunks"] == 0
        assert after["computed_chunks"] == 4
        assert after["partial"]["units_done"] == 10
        result = store.result(status["job"])
        assert result["kind"] == "montecarlo"
        assert len(result["rows"]) == 2
        assert manager.jobs_started == 1
        assert manager.jobs_resumed == 0

    def test_bad_spec_params_fail_terminally(self, tmp_path):
        store = JobStore(tmp_path)
        # Passes eager validation but dies planning: bad device.
        status, _ = store.submit(
            {"kind": "sweep",
             "params": {"kind": "trends", "nodes": ["x"]}})
        _run_all(tmp_path)
        after = store.status(status["job"])
        assert after["state"] == "failed"
        assert after["error"]

    def test_cancel_marker_stops_at_chunk_boundary(self, tmp_path):
        store = JobStore(tmp_path)
        status, _ = store.submit(MC_PAYLOAD)
        (store.job_dir(status["job"]) / "cancel").touch()
        _run_all(tmp_path)
        after = store.status(status["job"])
        assert after["state"] == "cancelled"
        assert store.result(status["job"]) is None

    def test_resume_never_recomputes_journaled_chunks(self, tmp_path):
        session = EvaluationSession()
        store = JobStore(tmp_path)
        status, _ = store.submit(MC_KEYED)
        job_id = status["job"]
        # First owner computes two chunks, then "crashes" (its pid
        # is recorded dead; the journal holds its checkpoints).
        plan = plan_job(store.load_spec(job_id), session)
        journal = store.journal(job_id)
        journal.append_chunk(0, plan.run_chunk(0))
        journal.append_chunk(1, plan.run_chunk(1))
        store.write_status(job_id, state="running", pid=99999999)
        manager = _run_all(tmp_path)
        after = store.status(job_id)
        assert after["state"] == "done"
        assert after["replayed_chunks"] == 2
        assert after["computed_chunks"] == 2
        assert manager.jobs_resumed == 1
        # Bit-for-bit: the resumed result equals a clean run's.
        clean = JobStore(tmp_path / "clean")
        clean_status, _ = clean.submit(MC_KEYED)
        JobManager(str(tmp_path / "clean"),
                   session=session).run_pending()
        assert _result_bytes(tmp_path, job_id) \
            == _result_bytes(tmp_path / "clean", clean_status["job"])

    def test_compaction_during_run(self, tmp_path):
        store = JobStore(tmp_path)
        status, _ = store.submit(
            {"kind": "montecarlo",
             "params": {"samples": 8, "seed": 2}, "chunk_size": 1})
        _run_all(tmp_path, compact_every=2)
        job_dir = store.job_dir(status["job"])
        assert (job_dir / "snapshot.json").is_file()
        assert store.status(status["job"])["state"] == "done"
        snapshot = json.loads(
            (job_dir / "snapshot.json").read_text())
        assert len(snapshot["chunks"]) >= 2

    def test_manager_threaded_lifecycle(self, tmp_path):
        manager = JobManager(str(tmp_path),
                             session=EvaluationSession(),
                             poll_interval=0.02)
        manager.start()
        try:
            status = manager.submit(dict(MC_PAYLOAD))
            assert status["created"] is True
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if manager.status(status["job"])["state"] == "done":
                    break
                time.sleep(0.02)
            assert manager.status(status["job"])["state"] == "done"
            counters = manager.counters()
            assert counters["jobs_started"] == 1
        finally:
            manager.stop()


# ----------------------------------------------------------------------
# SIGKILL crash-resume parity (the tentpole acceptance test).
# ----------------------------------------------------------------------
_CRASH_DRIVER = """
import sys
sys.path.insert(0, {src!r})
from repro.engine import EvaluationSession
from repro.jobs import JobManager
from repro.service.faults import FaultInjector, FaultRule

faults = FaultInjector(rules=[FaultRule(kind={fault_kind!r},
                                        point={fault_point!r},
                                        times=1)])
manager = JobManager({root!r}, session=EvaluationSession(),
                     faults=faults)
manager.store.submit({payload!r})
manager.run_pending()  # SIGKILLs itself at the fault point
print("survived")  # reaching here means the fault never fired
"""


def _crash_run(tmp_path, fault_kind, fault_point):
    """Run a job in a subprocess armed to SIGKILL itself."""
    root = str(tmp_path / "crashed")
    script = _CRASH_DRIVER.format(
        src=str(Path(__file__).resolve().parent.parent / "src"),
        fault_kind=fault_kind, fault_point=fault_point,
        root=root, payload=MC_KEYED)
    process = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True,
                             timeout=120)
    assert process.returncode == -signal.SIGKILL, (
        f"expected SIGKILL, got rc={process.returncode}: "
        f"{process.stdout}{process.stderr}")
    return root


def _clean_run(tmp_path):
    root = str(tmp_path / "clean")
    store = JobStore(root)
    status, _ = store.submit(MC_KEYED)
    _run_all(root)
    return root, status["job"]


@pytest.mark.parametrize("fault_kind,fault_point,survivors", [
    ("job-crash", "mid-chunk", 0),
    ("job-crash", "after-checkpoint", 1),
    ("job-torn-write", "*", 0),
])
def test_sigkill_resume_is_bit_for_bit(tmp_path, fault_kind,
                                       fault_point, survivors):
    """SIGKILL at every fault point; resume must be byte-identical.

    ``survivors`` is the number of durable chunks the crash leaves:
    mid-chunk dies before the journal write (0), after-checkpoint
    dies after it (1), and a torn write fsyncs only half a line,
    which replay must discard (0).
    """
    root = _crash_run(tmp_path, fault_kind, fault_point)
    store = JobStore(root)
    job_id = store.list_jobs()[0]["job"]
    journal = store.journal(job_id)
    assert len(journal.replay()) == survivors
    before = store.status(job_id)
    assert before["state"] == "running"  # crashed mid-flight

    manager = _run_all(root)
    after = store.status(job_id)
    assert after["state"] == "done"
    assert after["replayed_chunks"] == survivors
    assert after["computed_chunks"] == 4 - survivors
    assert manager.jobs_resumed == 1

    clean_root, clean_id = _clean_run(tmp_path)
    assert _result_bytes(root, job_id) \
        == _result_bytes(clean_root, clean_id)


def test_double_crash_then_resume(tmp_path):
    """Two consecutive crashes still converge to the exact result."""
    root = str(tmp_path / "crashed")
    src = str(Path(__file__).resolve().parent.parent / "src")
    for _ in range(2):
        script = _CRASH_DRIVER.format(
            src=src, fault_kind="job-crash",
            fault_point="after-checkpoint", root=root,
            payload=MC_KEYED)
        process = subprocess.run([sys.executable, "-c", script],
                                 capture_output=True, text=True,
                                 timeout=120)
        assert process.returncode == -signal.SIGKILL
    store = JobStore(root)
    job_id = store.list_jobs()[0]["job"]
    assert len(store.journal(job_id).replay()) == 2
    _run_all(root)
    assert store.status(job_id)["replayed_chunks"] == 2
    clean_root, clean_id = _clean_run(tmp_path)
    assert _result_bytes(root, job_id) \
        == _result_bytes(clean_root, clean_id)


def test_job_fault_rules_do_not_leak_into_requests():
    """Job-level rules never fire on the per-request path."""
    faults = FaultInjector(rules=[
        FaultRule(kind="job-crash", point="mid-chunk")])
    assert faults.before_request("/evaluate") is None
    assert faults.job_crash("mid-chunk") is True
    assert faults.job_crash("mid-chunk") is True  # times=-1
    assert faults.snapshot()["job-crash"] == 2
