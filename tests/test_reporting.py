"""Tests for the plain-text report renderer."""

import pytest

from repro.analysis import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.0], ["b", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.0" in text
        assert "2.5" in text

    def test_title_and_underline(self):
        text = format_table(["x"], [[1]], title="Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="

    def test_numeric_right_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 5.0], ["bbbb", 123.0]])
        lines = text.splitlines()
        # Last characters of numeric column line up.
        assert lines[-1].endswith("123.0")
        assert lines[-2].endswith("  5.0")

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting_one_decimal(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.1" in text
        assert "3.14159" not in text

    def test_string_cells_left_aligned(self):
        text = format_table(["name", "v"], [["ab", 1], ["abcdef", 2]])
        lines = text.splitlines()
        assert lines[-2].startswith("ab ")

    def test_empty_rows_allowed(self):
        text = format_table(["a"], [])
        assert "a" in text
