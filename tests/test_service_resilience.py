"""Resilience layer of the service: shedding, deadlines, faults."""

import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.client import NO_RETRY, RetryPolicy, ServiceClient
from repro.errors import ServiceError
from repro.service import (AdmissionController, AdmissionShed, Deadline,
                           DeadlineExceeded, FaultInjector, FaultRule,
                           InjectedFault, ResultCache, ServiceLimits,
                           create_service)


def _start_service(limits):
    svc = create_service(host="127.0.0.1", port=0, limits=limits)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    return svc, thread


def _stop_service(svc, thread):
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=5)
    assert not thread.is_alive()


def _probe_client(svc, **kwargs):
    """A client that observes raw statuses: no retry, no breaker."""
    kwargs.setdefault("retry", NO_RETRY)
    kwargs.setdefault("breaker", None)
    return ServiceClient(f"http://127.0.0.1:{svc.server_port}",
                         **kwargs)


@pytest.fixture()
def tight_service():
    """capacity=1 slot, queue=1: the smallest sheddable server."""
    limits = ServiceLimits(max_inflight=1, max_queue=1,
                           queue_timeout=5.0, request_timeout=0.0,
                           retry_after=0.0)
    svc, thread = _start_service(limits)
    yield svc
    _stop_service(svc, thread)


def _spin_until(predicate, timeout=5.0):
    deadline = threading.Event()
    poll = 0.002
    waited = 0.0
    while not predicate():
        deadline.wait(poll)
        waited += poll
        assert waited < timeout, "condition never became true"


class TestLoadShedding:
    def test_exact_shed_mix_and_inflight_bound(self, tight_service):
        svc = tight_service
        gate = threading.Event()
        svc.faults = FaultInjector(hook=lambda path: gate.wait(10))
        outcomes = []
        lock = threading.Lock()

        def post():
            client = _probe_client(svc)
            try:
                client.evaluate(device={"node": 55})
                status, hint = 200, None
            except ServiceError as error:
                status, hint = error.status, error.retry_after
            with lock:
                outcomes.append((status, hint))

        threads = [threading.Thread(target=post) for _ in range(6)]
        for thread in threads:
            thread.start()
        # One admitted (blocked in the hook), one queued, four shed
        # with 429 — wait until the sheds have all been tallied, then
        # open the gate.
        _spin_until(lambda:
                    svc.admission.snapshot()["shed_busy"] == 4)
        snap = svc.admission.snapshot()
        assert snap["in_flight"] == 1
        assert snap["queued"] == 1
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        statuses = sorted(status for status, _ in outcomes)
        assert statuses == [200, 200, 429, 429, 429, 429]
        # The bound held: never more than one request evaluating.
        assert svc.admission.snapshot()["max_in_flight"] == 1
        # Shed replies carried the Retry-After hint (0 rounds to 0).
        for status, hint in outcomes:
            if status == 429:
                assert hint == 0.0

    def test_queue_wait_timeout_is_503(self):
        limits = ServiceLimits(max_inflight=1, max_queue=4,
                               queue_timeout=0.05,
                               request_timeout=0.0, retry_after=0.0)
        svc, thread = _start_service(limits)
        try:
            gate = threading.Event()
            svc.faults = FaultInjector(
                hook=lambda path: gate.wait(10))
            holder = threading.Thread(
                target=lambda: _probe_client(svc).evaluate(
                    device={"node": 55}))
            holder.start()
            _spin_until(lambda:
                        svc.admission.snapshot()["in_flight"] == 1)
            with pytest.raises(ServiceError) as failure:
                _probe_client(svc).evaluate(device={"node": 55})
            assert failure.value.status == 503
            assert "queue wait" in str(failure.value)
            gate.set()
            holder.join(timeout=10)
            assert svc.admission.snapshot()["shed_timeout"] == 1
        finally:
            gate.set()
            _stop_service(svc, thread)

    def test_drain_rejects_queued_completes_admitted(self):
        limits = ServiceLimits(max_inflight=1, max_queue=4,
                               queue_timeout=10.0,
                               request_timeout=0.0, retry_after=0.0)
        svc, thread = _start_service(limits)
        gate = threading.Event()
        svc.faults = FaultInjector(hook=lambda path: gate.wait(10))
        outcomes = {}

        def post(name):
            try:
                _probe_client(svc).evaluate(device={"node": 55})
                outcomes[name] = 200
            except ServiceError as error:
                outcomes[name] = error.status

        admitted = threading.Thread(target=post, args=("admitted",))
        admitted.start()
        _spin_until(lambda:
                    svc.admission.snapshot()["in_flight"] == 1)
        queued = threading.Thread(target=post, args=("queued",))
        queued.start()
        _spin_until(lambda:
                    svc.admission.snapshot()["queued"] == 1)
        # Drain: the queued request gets an orderly 503; the admitted
        # one (still blocked in the hook) must run to completion.
        stopper = threading.Thread(target=svc.shutdown)
        stopper.start()
        queued.join(timeout=10)
        assert outcomes["queued"] == 503
        gate.set()
        admitted.join(timeout=10)
        assert outcomes["admitted"] == 200
        stopper.join(timeout=10)
        svc.server_close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert svc.admission.snapshot()["shed_draining"] >= 1


class TestDeadlines:
    def _slow_service(self, request_timeout, seconds=0.2,
                      path="/evaluate"):
        limits = ServiceLimits(request_timeout=request_timeout,
                               retry_after=0.0)
        svc, thread = _start_service(limits)
        svc.faults = FaultInjector(rules=[
            FaultRule(kind="latency", path=path, seconds=seconds)])
        return svc, thread

    def test_server_default_timeout_aborts_with_504(self):
        svc, thread = self._slow_service(request_timeout=0.05)
        try:
            client = _probe_client(svc)
            with pytest.raises(ServiceError) as failure:
                client.evaluate(device={"node": 55})
            assert failure.value.status == 504
            assert "budget" in str(failure.value)
            assert client.stats()["timeouts"] == 1
            # The shared session stayed consistent: the same request
            # succeeds once the fault stops firing.
            svc.faults = FaultInjector()
            assert client.evaluate(
                device={"node": 55})["count"] == 1
        finally:
            _stop_service(svc, thread)

    def test_header_extends_the_server_default(self):
        svc, thread = self._slow_service(request_timeout=0.05,
                                         seconds=0.1)
        try:
            reply = _probe_client(svc).evaluate(
                device={"node": 55}, request_timeout=10.0)
            assert reply["count"] == 1
        finally:
            _stop_service(svc, thread)

    def test_header_tightens_a_lenient_server(self):
        svc, thread = self._slow_service(request_timeout=30.0)
        try:
            with pytest.raises(ServiceError) as failure:
                _probe_client(svc).evaluate(device={"node": 55},
                                            request_timeout=0.05)
            assert failure.value.status == 504
        finally:
            _stop_service(svc, thread)

    def test_sweep_honours_the_deadline(self):
        svc, thread = self._slow_service(request_timeout=0.0,
                                         path="/sweep")
        try:
            with pytest.raises(ServiceError) as failure:
                _probe_client(svc).sweep("sensitivity",
                                         request_timeout=0.05)
            assert failure.value.status == 504
        finally:
            _stop_service(svc, thread)

    @pytest.mark.parametrize("header", ["abc", "-1", "0"])
    def test_invalid_timeout_header_is_400(self, header):
        limits = ServiceLimits(retry_after=0.0)
        svc, thread = _start_service(limits)
        try:
            url = (f"http://127.0.0.1:{svc.server_port}/evaluate")
            request = urllib.request.Request(
                url, data=b"{}", method="POST",
                headers={"Content-Type": "application/json",
                         "X-Request-Timeout": header})
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(request, timeout=10)
            assert failure.value.code == 400
        finally:
            _stop_service(svc, thread)


class TestBodyFraming:
    """Malformed HTTP framing is a client error, never a crash."""

    def _raw_post(self, svc, headers, body=b"", shut=False):
        with socket.create_connection(
                ("127.0.0.1", svc.server_port), timeout=10) as conn:
            lines = ["POST /evaluate HTTP/1.1",
                     "Host: 127.0.0.1",
                     "Content-Type: application/json"]
            lines += headers
            raw = "\r\n".join(lines).encode("ascii") + b"\r\n\r\n"
            conn.sendall(raw + body)
            if shut:
                conn.shutdown(socket.SHUT_WR)
            reply = conn.recv(4096)
        return reply.split(b"\r\n", 1)[0]

    def test_truncated_body_is_400(self, tight_service):
        status = self._raw_post(tight_service,
                                ["Content-Length: 100"],
                                body=b'{"device":', shut=True)
        assert b"400" in status

    def test_negative_content_length_is_400(self, tight_service):
        status = self._raw_post(tight_service,
                                ["Content-Length: -5"])
        assert b"400" in status

    def test_non_numeric_content_length_is_400(self, tight_service):
        status = self._raw_post(tight_service,
                                ["Content-Length: ten"])
        assert b"400" in status

    def test_missing_body_is_400(self, tight_service):
        status = self._raw_post(tight_service, [])
        assert b"400" in status


class TestFaultInjector:
    def test_from_env_parses_rules(self):
        injector = FaultInjector.from_env(
            {"REPRO_FAULTS": '[{"kind": "latency", "seconds": 0.5,'
                             ' "path": "/evaluate", "times": 3}]'})
        assert injector.active
        rule = injector.rules[0]
        assert (rule.kind, rule.path, rule.times, rule.seconds) == \
            ("latency", "/evaluate", 3, 0.5)

    def test_from_env_unset_is_inert(self):
        assert not FaultInjector.from_env({}).active

    def test_malformed_env_is_inert_not_fatal(self):
        for bad in ("not json", '{"kind": "latency"}',
                    '[{"kind": "meteor"}]'):
            assert not FaultInjector.from_env(
                {"REPRO_FAULTS": bad}).active

    def test_times_counts_down_then_stops(self):
        slept = []
        injector = FaultInjector(
            rules=[FaultRule(kind="latency", times=2, seconds=0.1)],
            sleep=slept.append)
        for _ in range(4):
            injector.before_request("/evaluate")
        assert slept == [0.1, 0.1]
        assert injector.snapshot()["latency"] == 2

    def test_error_rule_raises_with_status(self):
        injector = FaultInjector(
            rules=[FaultRule(kind="error", status=502)])
        with pytest.raises(InjectedFault) as failure:
            injector.before_request("/evaluate")
        assert failure.value.status == 502

    def test_reset_rule_returns_verdict(self):
        injector = FaultInjector(rules=[FaultRule(kind="reset")])
        assert injector.before_request("/sweep") == "reset"

    def test_path_scoping(self):
        injector = FaultInjector(
            rules=[FaultRule(kind="error", path="/sweep")])
        assert injector.before_request("/evaluate") is None
        with pytest.raises(InjectedFault):
            injector.before_request("/sweep")


class TestResultCache:
    def test_lru_eviction_keeps_recent(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), {"n": 1})
        cache.put(("b",), {"n": 2})
        assert cache.get(("a",)) == {"n": 1}  # refresh "a"
        cache.put(("c",), {"n": 3})  # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == {"n": 1}
        assert cache.get(("c",)) == {"n": 3}
        snap = cache.snapshot()
        assert snap["size"] == 2
        assert snap["hits"] == 3
        assert snap["misses"] == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put(("a",), {"n": 1})
        assert cache.get(("a",)) is None
        assert not cache.enabled
        assert cache.snapshot()["misses"] == 0


class TestAdmissionControllerUnits:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=-1)

    def test_admit_release_counters(self):
        controller = AdmissionController(capacity=2)
        controller.acquire()
        controller.acquire()
        snap = controller.snapshot()
        assert snap["in_flight"] == 2
        assert snap["admitted"] == 2
        assert snap["max_in_flight"] == 2
        controller.release()
        assert controller.snapshot()["in_flight"] == 1

    def test_queue_full_sheds_429(self):
        controller = AdmissionController(capacity=1, queue_limit=0)
        controller.acquire()
        with pytest.raises(AdmissionShed) as failure:
            controller.acquire()
        assert failure.value.status == 429
        assert controller.snapshot()["shed_busy"] == 1

    def test_queue_timeout_sheds_503(self):
        controller = AdmissionController(capacity=1, queue_limit=2,
                                         queue_timeout=0.02)
        controller.acquire()
        with pytest.raises(AdmissionShed) as failure:
            controller.acquire()
        assert failure.value.status == 503
        snap = controller.snapshot()
        assert snap["shed_timeout"] == 1
        assert snap["queued"] == 0

    def test_expired_deadline_beats_queue_timeout(self):
        controller = AdmissionController(capacity=1, queue_limit=2,
                                         queue_timeout=10.0)
        controller.acquire()
        with pytest.raises(DeadlineExceeded):
            controller.acquire(Deadline(-1.0))

    def test_drain_sheds_503_and_keeps_admitted(self):
        controller = AdmissionController(capacity=1)
        controller.acquire()
        controller.begin_drain()
        with pytest.raises(AdmissionShed) as failure:
            controller.acquire()
        assert failure.value.status == 503
        assert controller.snapshot()["draining"]
        controller.release()  # admitted work still finishes cleanly


class TestSaturationRecovery:
    def test_retrying_clients_all_succeed_within_bound(self):
        limits = ServiceLimits(max_inflight=2, max_queue=2,
                               queue_timeout=10.0,
                               request_timeout=0.0, retry_after=0.0)
        svc, thread = _start_service(limits)
        svc.faults = FaultInjector(rules=[
            FaultRule(kind="latency", path="/evaluate",
                      seconds=0.02)])
        try:
            policy = RetryPolicy(max_attempts=12, base_delay=0.01,
                                 max_delay=0.05)
            failures = []

            def hammer():
                client = ServiceClient(
                    f"http://127.0.0.1:{svc.server_port}",
                    retry=policy, breaker=None)
                try:
                    client.evaluate(device={"node": 55})
                except ServiceError as error:
                    failures.append(error)

            threads = [threading.Thread(target=hammer)
                       for _ in range(16)]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=60)
            assert failures == []
            snap = svc.admission.snapshot()
            # The configured bound held through the whole storm...
            assert snap["max_in_flight"] <= 2
            # ...and the storm was real: load actually got shed and
            # retried its way through.
            assert snap["shed_busy"] > 0
            assert snap["admitted"] >= 16
        finally:
            _stop_service(svc, thread)


# ----------------------------------------------------------------------
# Retry-After coverage: every shed-class reply carries the hint.
# ----------------------------------------------------------------------
class TestRetryAfterEverywhere:
    """Every 429/503 — buffered or streamed, from any endpoint —
    tells the client when to come back.

    Buffered replies (and streamed requests rejected *before* the
    first record) carry the ``Retry-After`` header even when the
    error site supplied no explicit hint: the reply path defaults it
    from ``ServiceLimits.retry_after``.  Errors after a stream has
    started cannot grow a header, so the hint rides in-band in the
    error record.
    """

    TRACE_TEXT = "0x0 READ 0\n0x40 WRITE 10\n"

    def test_injected_sheds_carry_the_header(self):
        limits = ServiceLimits(retry_after=2.0)
        svc, thread = _start_service(limits)
        requests = [
            ("/evaluate", {"device": {"node": 55}}),
            ("/sweep", {"kind": "schemes"}),
            ("/trace", {"device": {"node": 55},
                        "text": self.TRACE_TEXT}),
        ]
        try:
            for path, payload in requests:
                for status in (429, 503):
                    svc.faults.rules.append(FaultRule(
                        kind="error", path=path, times=1,
                        status=status))
                    client = _probe_client(svc)
                    with pytest.raises(ServiceError) as caught:
                        client.request("POST", path, payload)
                    assert caught.value.status == status, path
                    assert caught.value.retry_after == 2.0, path
                    client.close()
        finally:
            _stop_service(svc, thread)

    def test_streamed_request_shed_before_start_has_header(self):
        limits = ServiceLimits(retry_after=1.0)
        svc, thread = _start_service(limits)
        try:
            for path, payload in (
                    ("/evaluate", {"device": {"node": 55},
                                   "stream": True}),
                    ("/sweep", {"kind": "schemes", "stream": True})):
                svc.faults.rules.append(FaultRule(
                    kind="error", path=path, times=1, status=503))
                client = _probe_client(svc)
                with pytest.raises(ServiceError) as caught:
                    client._stream(path, payload, None)
                assert caught.value.status == 503, path
                assert caught.value.retry_after == 1.0, path
                client.close()
        finally:
            _stop_service(svc, thread)

    def test_mid_stream_errors_carry_the_hint_in_band(self):
        from repro.service.streaming import (
            _error_record as stream_record)
        from repro.service.tracing import (
            _error_record as trace_record)
        shed = ServiceError("busy", status=503, retry_after=2.0)
        assert stream_record(3, shed)["retry_after"] == 2.0
        assert trace_record(3, shed)["retry_after"] == 2.0
        # Non-shed errors carry no hint: nothing to wait for.
        plain = ServiceError("bad device", status=400)
        assert "retry_after" not in stream_record(0, plain)
        assert "retry_after" not in trace_record(0, plain)
