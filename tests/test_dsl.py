"""Tests for the description language: lexer, parser, builder, writer."""

import pytest

from repro import DramPowerModel
from repro.description import Command
from repro.dsl import dumps, loads, tokenize
from repro.dsl.parser import parse
from repro.errors import DslSyntaxError, DslValidationError

MINIMAL = """
# A minimal but complete description.
Device name=test interface=DDR3 node=55nm constant=4mA

FloorplanPhysical
CellArray BL=v BitsPerBL=512 BitsPerSWL=512 BLtype=open BlocksPerCSL=1
Pitch WLpitch=165nm BLpitch=110nm SAwidth=20um SWDwidth=8um
Horizontal blocks = A1 R1 A1 R1 A1 R1 A1
Vertical blocks = A1 P1 P2 P1 A1
SizeHorizontal R1=150um
SizeVertical P1=200um P2=530um

Specification
IO width=16 datarate=1.6Gbps prefetch=8
Clock number=2 frequency=800MHz
Control frequency=800MHz bankadd=3 rowadd=14 coladd=10 misc=8

Voltages
Supply vdd=1.5 vint=1.4 vbl=1.15 vpp=2.8
Efficiency vint=0.93 vbl=0.77 vpp=0.75

Technology
{params}

Timing
Row trc=50ns trrd=6.25ns tfaw=40ns

Pattern loop= act nop wrt nop rd nop pre nop
"""


def minimal_text():
    from repro.technology.scaling import BASELINE_55NM
    params = "\n".join(f"Param {name}={value!r}"
                       for name, value in BASELINE_55NM.items())
    return MINIMAL.format(params=params)


class TestLexer:
    def test_comments_and_blanks_skipped(self):
        statements = tokenize("# comment\n\nIO width=16\n")
        assert len(statements) == 1
        assert statements[0].keyword == "IO"

    def test_pairs_parsed(self):
        statement = tokenize("CellArray BL=v BitsPerBL=512")[0]
        assert statement.pairs == {"BL": "v", "BitsPerBL": "512"}

    def test_blocks_list_with_spaced_equals(self):
        statement = tokenize("Vertical blocks = A1 P1 P2 P1 A1")[0]
        assert statement.words == ("A1", "P1", "P2", "P1", "A1")

    def test_pattern_loop_form(self):
        statement = tokenize("Pattern loop= act nop pre nop")[0]
        assert statement.keyword == "Pattern"
        assert statement.words == ("act", "nop", "pre", "nop")

    def test_section_header_detected(self):
        statement = tokenize("FloorplanPhysical")[0]
        assert statement.is_section_header

    def test_duplicate_key_rejected(self):
        with pytest.raises(DslSyntaxError):
            tokenize("IO width=16 width=8")

    def test_bad_token_rejected(self):
        with pytest.raises(DslSyntaxError):
            tokenize("IO width")

    def test_empty_list_rejected(self):
        with pytest.raises(DslSyntaxError):
            tokenize("Vertical blocks =")

    def test_error_carries_line_number(self):
        try:
            tokenize("IO width=16\nIO oops", source="test.dram")
        except DslSyntaxError as error:
            assert error.line == 2
            assert "test.dram" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")


class TestParser:
    def test_statements_grouped_by_section(self):
        parsed = parse(tokenize(minimal_text()))
        assert parsed.statements("Specification", "IO")
        assert parsed.statements("Voltages", "Supply")

    def test_device_and_pattern_top_level(self):
        parsed = parse(tokenize(minimal_text()))
        assert parsed.device["name"] == "test"
        assert parsed.pattern[0] == "act"

    def test_statement_outside_section_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse(tokenize("IO width=16"))

    def test_unknown_statement_in_section_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse(tokenize("Specification\nBogus key=value"))

    def test_missing_required_section_rejected(self):
        text = "\n".join(line for line in minimal_text().splitlines()
                         if not line.startswith("Timing")
                         and not line.startswith("Row "))
        with pytest.raises(DslSyntaxError):
            parse(tokenize(text))

    def test_merged_pairs_reject_duplicates(self):
        text = minimal_text() + "\nVoltages\nSupply vdd=1.5\n"
        with pytest.raises(DslSyntaxError):
            parse(tokenize(text)).merged_pairs("Voltages", "Supply")


class TestBuilder:
    def test_minimal_description_builds(self):
        device = loads(minimal_text())
        assert device.name == "test"
        assert device.spec.io_width == 16
        assert device.voltages.vpp == pytest.approx(2.8)
        assert device.timing.trc == pytest.approx(50e-9)
        assert device.pattern.counts()[Command.ACT] == 1

    def test_model_runs_on_dsl_device(self):
        device = loads(minimal_text())
        power = DramPowerModel(device).pattern_power()
        assert power.power > 0

    def test_missing_key_reported(self):
        text = minimal_text().replace("Supply vdd=1.5 ", "Supply ")
        with pytest.raises(DslValidationError):
            loads(text)

    def test_missing_technology_param_reported(self):
        text = minimal_text().replace("Param c_bitline", "Param c_bitlin")
        with pytest.raises(DslValidationError):
            loads(text)

    def test_bare_width_is_micrometres(self):
        # The paper's excerpt: "DataW1 start=0_2 end=3_2 PchW=19.2
        # NchW=9.6" — bare widths in µm.
        text = minimal_text() + (
            "\nFloorplanSignaling\n"
            "Net name=DataW trigger=access ops=wr rail=vint "
            "component=datapath\n"
            "Seg net=DataW start=0_2 end=3_2 PchW=19.2 NchW=9.6\n"
        )
        device = loads(text)
        segment = device.signaling.net("DataW").segments[0]
        assert segment.buffer_w_p == pytest.approx(19.2e-6)
        assert segment.buffer_w_n == pytest.approx(9.6e-6)

    def test_mux_ratio_form(self):
        text = minimal_text() + (
            "\nFloorplanSignaling\n"
            "Net name=DataW0 trigger=access ops=wr rail=vint "
            "component=datapath\n"
            "Seg net=DataW0 inside=0_2 fraction=25% dir=h mux=1:8\n"
        )
        segment = loads(text).signaling.net("DataW0").segments[0]
        assert segment.mux_ratio == 8.0
        assert segment.fraction == pytest.approx(0.25)

    def test_segment_for_unknown_net_rejected(self):
        text = minimal_text() + (
            "\nFloorplanSignaling\nSeg net=ghost start=0_2 end=3_2\n"
        )
        with pytest.raises(DslValidationError):
            loads(text)

    def test_bad_coordinate_rejected(self):
        text = minimal_text() + (
            "\nFloorplanSignaling\n"
            "Net name=N trigger=access ops=rd rail=vint component=datapath\n"
            "Seg net=N start=02 end=3_2\n"
        )
        with pytest.raises(DslValidationError):
            loads(text)


class TestRoundTrip:
    def test_power_identical_for_all_catalog_devices(self, all_devices):
        for device in all_devices:
            restored = loads(dumps(device))
            original = DramPowerModel(device).pattern_power().power
            rebuilt = DramPowerModel(restored).pattern_power().power
            assert rebuilt == pytest.approx(original, rel=1e-6), device.name

    def test_structure_preserved(self, ddr3_device):
        restored = loads(dumps(ddr3_device))
        assert restored.name == ddr3_device.name
        assert restored.spec == ddr3_device.spec
        # Voltages survive within the writer's 9-digit float precision.
        assert restored.voltages.as_dict() == pytest.approx(
            ddr3_device.voltages.as_dict(), rel=1e-8
        )
        assert len(restored.signaling) == len(ddr3_device.signaling)
        assert len(restored.logic_blocks) == len(ddr3_device.logic_blocks)

    def test_double_round_trip_stable(self, ddr3_device):
        once = dumps(loads(dumps(ddr3_device)))
        twice = dumps(loads(once))
        assert once == twice
