"""End-to-end integration tests spanning the full pipeline.

Each test exercises the whole stack the way a downstream user would:
DSL file → description → model → analysis → report.
"""

import pytest

from repro import DramPowerModel, build_device
from repro.analysis import (
    energy_reduction_factors,
    format_table,
    generation_trend,
    sensitivity,
    verify_ddr3,
)
from repro.core.idd import IddMeasure, standard_idd_suite
from repro.description import Command, Pattern
from repro.dsl import dump, dumps, load
from repro.schemes import SelectiveBitlineActivation, compare_schemes


class TestFileWorkflow:
    def test_dump_load_file(self, tmp_path, ddr3_device):
        path = tmp_path / "device.dram"
        dump(ddr3_device, path)
        restored = load(path)
        original = DramPowerModel(ddr3_device).pattern_power().power
        rebuilt = DramPowerModel(restored).pattern_power().power
        assert rebuilt == pytest.approx(original, rel=1e-6)

    def test_edit_description_file_changes_power(self, tmp_path,
                                                 ddr3_device):
        # A user doubles the bitline capacitance in the text file; the
        # activate power must go up.
        text = dumps(ddr3_device)
        base_cap = ddr3_device.technology.c_bitline
        edited = text.replace(f"Param c_bitline={base_cap:.9g}",
                              f"Param c_bitline={2 * base_cap:.9g}")
        assert edited != text
        path = tmp_path / "edited.dram"
        path.write_text(edited)
        modified = load(path)
        base = DramPowerModel(ddr3_device).operation_energy(Command.ACT)
        new = DramPowerModel(modified).operation_energy(Command.ACT)
        assert new > base


class TestUserScenarios:
    def test_custom_pattern_evaluation(self, ddr3_model):
        # A streaming workload: open the row once, read it out fully.
        streaming = Pattern.parse(
            "act nop rd nop rd nop rd nop rd nop rd nop pre nop"
        )
        mixed = Pattern.parse("act nop rd nop pre nop")
        s = ddr3_model.pattern_power(streaming)
        m = ddr3_model.pattern_power(mixed)
        # Streaming amortises the row energy: cheaper per bit.
        assert s.energy_per_bit < m.energy_per_bit

    def test_full_idd_suite_consistency(self, ddr3_model):
        suite = standard_idd_suite(ddr3_model)
        # Active measures sit at or above the standby floor; the gated
        # power-down and self-refresh states sit below it.
        floor = suite[IddMeasure.IDD2N].current
        low_power = {IddMeasure.IDD2P, IddMeasure.IDD3P, IddMeasure.IDD6}
        for measure, result in suite.items():
            if measure in low_power:
                assert result.current < floor, measure
            else:
                assert result.current >= floor * 0.999, measure

    def test_what_if_voltage_study(self, ddr3_device):
        # Lower Vint by 10 % and quantify the saving — the model's core
        # use case.
        low = ddr3_device.replace_path("voltages.vint",
                                       ddr3_device.voltages.vint * 0.9)
        base = DramPowerModel(ddr3_device).pattern_power().power
        saved = DramPowerModel(low).pattern_power().power
        assert 0.0 < 1.0 - saved / base < 0.25

    def test_future_device_forecast(self):
        # Build a hypothetical DDR5 x32 part and check it produces
        # coherent numbers.
        device = build_device(16, io_width=32)
        model = DramPowerModel(device)
        result = model.pattern_power()
        assert result.power > 0
        assert result.energy_per_bit_pj < 10

    def test_scheme_on_dsl_round_tripped_device(self, ddr3_device):
        from repro.dsl import loads
        restored = loads(dumps(ddr3_device))
        result = SelectiveBitlineActivation().evaluate(restored)
        assert result.power_saving > 0.2


class TestPaperPipeline:
    """The experiments of Section IV chained end to end."""

    def test_verification_then_sensitivity(self):
        rows = verify_ddr3(nodes=(55,))
        assert rows
        device = build_device(55, interface="DDR3",
                              density_bits=1 << 30, datarate=1333e6)
        results = sensitivity(device, variation=0.1)
        assert results[0].name == "Internal voltage Vint"

    def test_trend_report_renders(self):
        points = generation_trend(node_list=[170, 55, 18])
        table = format_table(
            ["node", "pJ/bit"],
            [[point.node_nm, point.energy_idd7_pj] for point in points],
            title="Figure 13 excerpt",
        )
        assert "Figure 13 excerpt" in table
        assert "170" in table

    def test_energy_factors_on_subset(self):
        points = generation_trend()
        early, late = energy_reduction_factors(points)
        assert early > late > 1.0

    def test_scheme_comparison_on_paper_device(self, ddr3_device):
        results = compare_schemes(ddr3_device)
        names = [result.scheme for result in results]
        assert "selective-bitline-activation" in names
        # Sorted by saving, best first.
        savings = [result.power_saving for result in results]
        assert savings == sorted(savings, reverse=True)
