"""Tests for the interface specification and timing parameters."""

import pytest

from repro.description import Specification, TimingParameters
from repro.errors import DescriptionError


def ddr3_spec(**overrides):
    values = dict(
        io_width=16,
        datarate=1.6e9,
        n_clock_wires=2,
        f_dataclock=800e6,
        f_ctrlclock=800e6,
        bank_bits=3,
        row_bits=14,
        col_bits=10,
        prefetch=8,
    )
    values.update(overrides)
    return Specification(**values)


class TestSpecification:
    def test_paper_example(self):
        # "IO width=16 datarate=1.6Gbps / Clock frequency=800MHz".
        spec = ddr3_spec()
        assert spec.is_ddr
        assert spec.bits_per_access == 128
        assert spec.core_access_rate == pytest.approx(200e6)
        assert spec.peak_bandwidth == pytest.approx(25.6e9)

    def test_page_bits(self):
        assert ddr3_spec().page_bits == 16384

    def test_density(self):
        spec = ddr3_spec()
        assert spec.density_bits == 8 * (1 << 14) * 16384  # 2 Gb
        assert spec.banks == 8
        assert spec.rows_per_bank == 16384

    def test_sdr_single_data_rate(self):
        spec = ddr3_spec(datarate=166e6, f_dataclock=166e6,
                         f_ctrlclock=166e6, prefetch=1)
        assert not spec.is_ddr
        assert spec.bits_per_access == 16

    def test_burst_defaults_to_prefetch(self):
        assert ddr3_spec().burst_length == 8

    def test_rejects_rate_clock_mismatch(self):
        # 3x the clock is neither SDR nor DDR.
        with pytest.raises(DescriptionError):
            ddr3_spec(datarate=2.4e9)

    def test_rejects_non_power_of_two_prefetch(self):
        with pytest.raises(DescriptionError):
            ddr3_spec(prefetch=6)

    def test_rejects_burst_beyond_columns(self):
        with pytest.raises(DescriptionError):
            ddr3_spec(col_bits=2, prefetch=8)

    def test_rejects_zero_width(self):
        with pytest.raises(DescriptionError):
            ddr3_spec(io_width=0)

    def test_scaled_copy(self):
        spec = ddr3_spec().scaled(io_width=8)
        assert spec.io_width == 8
        assert spec.page_bits == 8192


def ddr3_timing(**overrides):
    values = dict(trc=50e-9, trrd=6.25e-9, tfaw=40e-9)
    values.update(overrides)
    return TimingParameters(**values)


class TestTimingParameters:
    def test_max_row_rate_trrd_limited(self):
        timing = ddr3_timing(trrd=5e-9, tfaw=40e-9)
        # 4/tFAW = 100 M/s < 1/tRRD = 200 M/s → FAW limited.
        assert timing.max_row_rate == pytest.approx(1e8)

    def test_max_row_rate_uses_minimum(self):
        timing = ddr3_timing(trrd=10e-9, tfaw=20e-9)
        assert timing.max_row_rate == pytest.approx(1.0 / 10e-9)

    def test_rejects_trrd_above_trc(self):
        with pytest.raises(DescriptionError):
            ddr3_timing(trrd=60e-9)

    def test_rejects_tfaw_below_trrd(self):
        with pytest.raises(DescriptionError):
            ddr3_timing(trrd=20e-9, tfaw=10e-9)

    def test_rejects_non_positive(self):
        with pytest.raises(DescriptionError):
            ddr3_timing(trc=0.0)

    def test_scaled_copy(self):
        timing = ddr3_timing().scaled(trc=60e-9)
        assert timing.trc == pytest.approx(60e-9)
