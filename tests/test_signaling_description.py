"""Tests for signal nets and segments."""

import pytest

from repro.description import Rail
from repro.description.signaling import (
    SegmentKind,
    SignalNet,
    SignalSegment,
    SignalingFloorplan,
    Trigger,
)
from repro.errors import DescriptionError, FloorplanError


def span_segment(**overrides):
    values = dict(kind=SegmentKind.SPAN, start=(0, 2), end=(3, 2),
                  wires=16, toggle=0.5)
    values.update(overrides)
    return SignalSegment(**values)


def inside_segment(**overrides):
    values = dict(kind=SegmentKind.INSIDE, start=(3, 2), fraction=0.25,
                  direction="h", wires=16, toggle=0.5)
    values.update(overrides)
    return SignalSegment(**values)


class TestSignalSegment:
    def test_span_requires_end(self):
        with pytest.raises(FloorplanError):
            span_segment(end=None)

    def test_inside_fraction_range(self):
        with pytest.raises(FloorplanError):
            inside_segment(fraction=0.0)
        with pytest.raises(FloorplanError):
            inside_segment(fraction=1.5)

    def test_inside_direction_validated(self):
        with pytest.raises(FloorplanError):
            inside_segment(direction="z")

    def test_toggle_range(self):
        with pytest.raises(DescriptionError):
            span_segment(toggle=1.5)

    def test_wires_positive(self):
        with pytest.raises(DescriptionError):
            span_segment(wires=0)

    def test_buffer_widths_non_negative(self):
        with pytest.raises(DescriptionError):
            span_segment(buffer_w_n=-1e-6)

    def test_has_buffer(self):
        assert span_segment(buffer_w_n=1e-6).has_buffer
        assert not span_segment().has_buffer

    def test_mux_ratio_at_least_one(self):
        with pytest.raises(DescriptionError):
            span_segment(mux_ratio=0.5)

    def test_paper_example_deserializer(self):
        # "DataW0 inside=0_2 fraction=25% dir=h mux=1:8"
        segment = inside_segment(start=(0, 2), mux_ratio=8.0)
        assert segment.mux_ratio == 8.0
        assert segment.kind is SegmentKind.INSIDE


class TestSignalNet:
    def test_requires_segments(self):
        with pytest.raises(DescriptionError):
            SignalNet(name="empty", segments=())

    def test_requires_name(self):
        with pytest.raises(DescriptionError):
            SignalNet(name="", segments=(span_segment(),))

    def test_background_when_no_operations(self):
        net = SignalNet(name="clk", segments=(span_segment(),),
                        trigger=Trigger.PER_CTRL_CLOCK)
        assert net.is_background

    def test_gated_when_operations_given(self):
        net = SignalNet(name="wdata", segments=(span_segment(),),
                        operations=frozenset({"wr"}))
        assert not net.is_background

    def test_string_enums_coerced(self):
        net = SignalNet(name="x", segments=(span_segment(),),
                        trigger="access", rail="vbl")
        assert net.trigger is Trigger.PER_ACCESS
        assert net.rail is Rail.VBL


class TestSignalingFloorplan:
    def test_duplicate_names_rejected(self):
        nets = (
            SignalNet(name="a", segments=(span_segment(),)),
            SignalNet(name="a", segments=(inside_segment(),)),
        )
        with pytest.raises(DescriptionError):
            SignalingFloorplan(nets)

    def test_lookup_by_name(self):
        plan = SignalingFloorplan((
            SignalNet(name="a", segments=(span_segment(),)),
        ))
        assert plan.net("a").name == "a"
        with pytest.raises(KeyError):
            plan.net("b")

    def test_iteration_and_length(self):
        plan = SignalingFloorplan((
            SignalNet(name="a", segments=(span_segment(),)),
            SignalNet(name="b", segments=(inside_segment(),)),
        ))
        assert len(plan) == 2
        assert [net.name for net in plan] == ["a", "b"]

    def test_empty_floorplan_allowed(self):
        assert len(SignalingFloorplan()) == 0
