"""Tests for speed bins, Monte-Carlo variation and the Pareto frontier."""

import pytest

from repro import DramPowerModel
from repro.analysis.montecarlo import monte_carlo
from repro.core.idd import IddMeasure, idd0, idd4r
from repro.devices import (
    bins_for_interface,
    build_binned_device,
    ddr3_2g_55nm,
    speed_bin,
)
from repro.errors import DescriptionError, ModelError
from repro.schemes import compare_schemes, pareto_frontier


class TestSpeedBins:
    def test_lookup_case_insensitive(self):
        assert speed_bin("ddr3-1600").datarate == pytest.approx(1.6e9)

    def test_unknown_bin_rejected(self):
        with pytest.raises(DescriptionError):
            speed_bin("DDR9-9999")

    def test_bins_for_interface_sorted(self):
        bins = bins_for_interface("DDR3")
        rates = [bin.datarate for bin in bins]
        assert rates == sorted(rates)
        assert len(bins) == 5

    def test_binned_device_carries_timings(self):
        device = build_binned_device("DDR3-1333", 65,
                                     density_bits=1 << 30)
        assert device.timing.trc == pytest.approx(49.5e-9)
        assert device.timing.trrd == pytest.approx(6.0e-9)
        assert device.spec.datarate == pytest.approx(1333e6)
        assert "DDR3-1333" in device.name

    def test_faster_bin_draws_more_idd4(self):
        slow = DramPowerModel(build_binned_device("DDR3-1066", 65,
                                                  density_bits=1 << 30))
        fast = DramPowerModel(build_binned_device("DDR3-1600", 65,
                                                  density_bits=1 << 30))
        assert idd4r(fast).current > idd4r(slow).current

    def test_tighter_trc_raises_idd0(self):
        # Same device, faster row cycling: IDD0 grows.
        ddr2_slow = DramPowerModel(build_binned_device(
            "DDR2-400", 75, density_bits=1 << 30))
        ddr2_fast = DramPowerModel(build_binned_device(
            "DDR2-800", 75, density_bits=1 << 30))
        assert idd0(ddr2_fast).current > idd0(ddr2_slow).current

    def test_all_bins_build_valid_devices(self):
        from repro.devices.speed_bins import SPEED_BINS
        node_for = {"DDR2": 75, "DDR3": 55, "DDR4": 31, "DDR5": 18}
        for name, chosen in SPEED_BINS.items():
            device = build_binned_device(name,
                                         node_for[chosen.interface])
            assert DramPowerModel(device).pattern_power().power > 0, name


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def distributions(self):
        return {dist.measure: dist
                for dist in monte_carlo(ddr3_2g_55nm(), samples=40,
                                        seed=11)}

    def test_mean_near_nominal(self, distributions, ddr3_model):
        nominal = idd0(ddr3_model).milliamps
        assert distributions[IddMeasure.IDD0].mean == pytest.approx(
            nominal, rel=0.05)

    def test_spread_positive_and_bounded(self, distributions):
        dist = distributions[IddMeasure.IDD4R]
        assert 0 < dist.stdev < 0.15 * dist.mean
        assert dist.minimum < dist.mean < dist.maximum

    def test_guard_band_figure(self, distributions):
        # p95/mean sits a few percent up — the datasheet-maximum story.
        band = distributions[IddMeasure.IDD0].guard_band
        assert 1.01 < band < 1.25

    def test_deterministic_per_seed(self):
        device = ddr3_2g_55nm()
        first = monte_carlo(device, samples=5, seed=3)[0].samples
        second = monte_carlo(device, samples=5, seed=3)[0].samples
        assert first == second

    def test_percentile_bounds(self, distributions):
        dist = distributions[IddMeasure.IDD0]
        assert dist.percentile(0.0) == dist.minimum
        assert dist.percentile(1.0) == dist.maximum
        with pytest.raises(ModelError):
            dist.percentile(1.5)

    def test_sample_count_validated(self):
        with pytest.raises(ModelError):
            monte_carlo(ddr3_2g_55nm(), samples=0)


class TestParetoFrontier:
    def test_frontier_is_non_dominated(self, ddr3_device):
        results = compare_schemes(ddr3_device)
        frontier = pareto_frontier(results)
        names = {result.scheme for result in frontier}
        # The zero-area CSL architecture anchors the frontier; SSA is
        # dominated by SBA (same saving, more area).
        assert "csl-ratio-reduction" in names
        assert "single-subarray-access" not in names
        # Frontier sorted by area, power saving non-decreasing along it.
        savings = [result.power_saving for result in frontier]
        assert savings == sorted(savings)

    def test_frontier_subset(self, ddr3_device):
        results = compare_schemes(ddr3_device)
        frontier = pareto_frontier(results)
        assert 0 < len(frontier) <= len(results)
