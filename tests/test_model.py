"""Tests for the DramPowerModel pipeline and pattern evaluation."""

import pytest

from repro import DramPowerModel
from repro.core.events import Component
from repro.description import Command, Pattern
from repro.errors import ModelError


class TestPatternPower:
    def test_default_pattern_is_papers(self, ddr3_model):
        result = ddr3_model.pattern_power()
        assert result.pattern == "act nop wr nop rd nop pre nop"

    def test_pattern_power_decomposition(self, ddr3_model):
        # Pattern power must equal background plus the weighted operation
        # energies — the paper's final combination step.
        pattern = Pattern.parse("act nop wrt nop rd nop pre nop")
        result = ddr3_model.pattern_power(pattern)
        duration = len(pattern) / ddr3_model.device.spec.f_ctrlclock
        expected = ddr3_model.background_power
        for command in (Command.ACT, Command.PRE, Command.RD, Command.WR):
            expected += ddr3_model.operation_energy(command) / duration
        assert result.power == pytest.approx(expected)

    def test_operation_power_entries(self, ddr3_model):
        result = ddr3_model.pattern_power()
        assert set(result.operation_power) == {
            "background", "act", "pre", "rd", "wr"
        }
        assert sum(result.operation_power.values()) == pytest.approx(
            result.power
        )

    def test_nop_only_pattern_is_background(self, ddr3_model):
        result = ddr3_model.pattern_power(Pattern.parse("nop"))
        assert result.power == pytest.approx(ddr3_model.background_power)
        assert result.energy_per_bit == float("inf")

    def test_current_is_power_over_vdd(self, ddr3_model):
        result = ddr3_model.pattern_power()
        assert result.current == pytest.approx(
            result.power / ddr3_model.device.voltages.vdd
        )

    def test_data_rate_accounting(self, ddr3_model):
        pattern = Pattern.parse("act nop wrt nop rd nop pre nop")
        result = ddr3_model.pattern_power(pattern)
        duration = 8 / 800e6
        expected = 2 * ddr3_model.device.spec.bits_per_access / duration
        assert result.data_bits_per_second == pytest.approx(expected)

    def test_energy_per_bit_pj_consistent(self, ddr3_model):
        result = ddr3_model.pattern_power()
        assert result.energy_per_bit_pj == pytest.approx(
            result.energy_per_bit * 1e12
        )

    def test_counts_power_rejects_zero_duration(self, ddr3_model):
        with pytest.raises(ModelError):
            ddr3_model.counts_power({Command.RD: 1.0}, 0.0)

    def test_counts_power_rejects_negative_count(self, ddr3_model):
        with pytest.raises(ModelError):
            ddr3_model.counts_power({Command.RD: -1.0}, 1e-6)

    def test_more_reads_more_power(self, ddr3_model):
        light = ddr3_model.pattern_power(
            Pattern.parse("rd nop nop nop nop nop nop nop"))
        heavy = ddr3_model.pattern_power(
            Pattern.parse("rd nop rd nop rd nop rd nop"))
        assert heavy.power > light.power


class TestModelConstruction:
    def test_event_list_nonempty(self, ddr3_model):
        assert len(ddr3_model.events) > 10

    def test_custom_event_list(self, ddr3_device, ddr3_model):
        # Halving all activate bitline counts must reduce ACT energy.
        modified = tuple(
            event.scaled(count=event.count / 2)
            if event.name == "bitline swing" else event
            for event in ddr3_model.events
        )
        model = DramPowerModel(ddr3_device, events=modified)
        assert (model.operation_energy(Command.ACT)
                < ddr3_model.operation_energy(Command.ACT))

    def test_component_share_sums_to_one(self, ddr3_model):
        total = sum(ddr3_model.component_share(component)
                    for component in Component)
        assert total == pytest.approx(1.0)

    def test_total_switched_capacitance_positive(self, ddr3_model):
        # The sum over C·count is dominated by the page's bitlines.
        total = ddr3_model.total_switched_capacitance()
        page_cap = (ddr3_model.device.spec.page_bits
                    * ddr3_model.device.technology.c_bitline)
        assert total > page_cap


class TestPhysicalOrderings:
    """Sanity orderings that must hold for any real DRAM."""

    def test_activate_is_nanojoule_scale(self, ddr3_model):
        energy = ddr3_model.operation_energy(Command.ACT)
        assert 0.1e-9 < energy < 100e-9

    def test_read_energy_per_bit_scale(self, ddr3_model):
        energy = ddr3_model.operation_energy(Command.RD)
        per_bit = energy / ddr3_model.device.spec.bits_per_access
        assert 1e-12 < per_bit < 100e-12  # a few pJ per bit internally

    def test_background_power_scale(self, ddr3_model):
        # Tens of milliwatts for a DDR3 part.
        assert 10e-3 < ddr3_model.background_power < 200e-3

    def test_write_close_to_read(self, ddr3_model):
        read = ddr3_model.operation_energy(Command.RD)
        write = ddr3_model.operation_energy(Command.WR)
        assert 0.8 < write / read < 1.5

    def test_wider_io_costs_more_per_access(self, ddr3_model, x4_device):
        x4_model = DramPowerModel(x4_device)
        read_x4 = x4_model.operation_energy(Command.RD)
        read_x16 = ddr3_model.operation_energy(Command.RD)
        assert read_x16 > read_x4
