"""Tests for the mobile (LPDDR-style) device variants."""

import pytest

from repro import DramPowerModel
from repro.core.idd import idd2n, idd2p, idd4r
from repro.devices import build_device, build_mobile_device


@pytest.fixture(scope="module")
def mobile_55():
    return build_mobile_device(55)


@pytest.fixture(scope="module")
def commodity_55_x32():
    return build_device(55, io_width=32)


class TestConstruction:
    def test_name_marks_mobile(self, mobile_55):
        assert "mobile" in mobile_55.name

    def test_low_supply(self, mobile_55):
        assert mobile_55.voltages.vdd == pytest.approx(1.2)
        assert mobile_55.voltages.vint <= 1.2

    def test_old_nodes_use_lpddr1_supply(self):
        mobile = build_mobile_device(90)
        assert mobile.voltages.vdd == pytest.approx(1.8)

    def test_edge_pad_nets_added(self, mobile_55):
        names = {net.name for net in mobile_55.signaling}
        assert "EdgePadRead" in names
        assert "EdgePadWrite" in names

    def test_technology_rails_preserved(self, mobile_55,
                                        commodity_55_x32):
        # Vbl/Vpp are technology properties, unchanged by packaging.
        assert mobile_55.voltages.vbl == commodity_55_x32.voltages.vbl
        assert mobile_55.voltages.vpp == commodity_55_x32.voltages.vpp

    def test_leaner_control_block(self, mobile_55, commodity_55_x32):
        assert (mobile_55.logic_block("control").n_gates
                < commodity_55_x32.logic_block("control").n_gates)

    def test_smaller_constant_current(self, mobile_55,
                                      commodity_55_x32):
        assert (mobile_55.constant_current
                < commodity_55_x32.constant_current)


class TestPowerCharacteristics:
    def test_lower_standby_than_commodity(self, mobile_55,
                                          commodity_55_x32):
        mobile = DramPowerModel(mobile_55)
        commodity = DramPowerModel(commodity_55_x32)
        assert idd2n(mobile).current < 0.8 * idd2n(commodity).current

    def test_lower_power_down_too(self, mobile_55, commodity_55_x32):
        mobile = DramPowerModel(mobile_55)
        commodity = DramPowerModel(commodity_55_x32)
        assert idd2p(mobile).current < idd2p(commodity).current

    def test_lower_energy_per_bit(self, mobile_55, commodity_55_x32):
        mobile = DramPowerModel(mobile_55)
        commodity = DramPowerModel(commodity_55_x32)
        assert (mobile.pattern_power().energy_per_bit
                < commodity.pattern_power().energy_per_bit)

    def test_edge_wiring_costs_io_energy(self, mobile_55):
        # The edge-pad nets must show up in the read-energy breakdown.
        from repro.description import Command
        model = DramPowerModel(mobile_55)
        names = [event.name for event, _ in
                 model.event_energies(Command.RD)]
        assert any("EdgePadRead" in name for name in names)

    def test_still_a_valid_model(self, mobile_55):
        model = DramPowerModel(mobile_55)
        result = idd4r(model)
        assert 50 < result.milliamps < 500

    def test_dsl_round_trip(self, mobile_55):
        from repro.dsl import dumps, loads
        restored = loads(dumps(mobile_55))
        original = DramPowerModel(mobile_55).pattern_power().power
        rebuilt = DramPowerModel(restored).pattern_power().power
        assert rebuilt == pytest.approx(original, rel=1e-6)
